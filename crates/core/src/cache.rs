//! The sharded synthesis-result cache (paper Section IV-D).
//!
//! Synthesis is the dominant training cost, and prefix-graph states recur
//! as ε decays — the paper reports cache hit rates reaching 50% (32b) and
//! 10% (64b). The cache keys on the canonical present-node bitset of the
//! graph, so structurally identical states share one evaluation across all
//! actors.
//!
//! Since the task/backend redesign (DESIGN.md §12), every key is prefixed
//! with the inner evaluator's [`Evaluator::cache_discriminant`] — derived
//! from `(task_id, backend_id)` for task evaluators — so two tasks (or two
//! backends) can never alias an entry or a shard, even when they share one
//! cache.
//!
//! Since the serve daemon (DESIGN.md §13), the sharded store itself is a
//! standalone type, [`EvalCache`]: a [`CachedEvaluator`] is one evaluator
//! *bound* to a store, and several bindings — one per `(task, backend)`
//! pair a resident server is optimizing — can share a single
//! `Arc<EvalCache>` so all jobs draw from one memory budget and one
//! statistics surface while the discriminant prefix keeps their entries
//! apart.
//!
//! The store is **N-way sharded** by canonical-key hash so concurrent
//! actors contend only on the shard their state maps to, not on one global
//! lock. Each shard has:
//!
//! - a bounded map with FIFO eviction (`capacity_per_shard`), so a long
//!   training run cannot grow the cache without bound;
//! - its own hit/miss/eviction counters (aggregated by the accessors);
//! - an **in-flight set** deduplicating concurrent misses: when several
//!   actors miss on the same state simultaneously, exactly one runs the
//!   evaluator and the rest block on the shard's condvar and reuse the
//!   result — with synthesis at tens of milliseconds per state, duplicate
//!   evaluation is the expensive failure mode, not the blocking.

use crate::evaluator::{Evaluator, ObjectivePoint};
use prefix_graph::PrefixGraph;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Sizing of a [`CachedEvaluator`].
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Number of independent shards (≥ 1; default 16).
    pub shards: usize,
    /// Maximum entries per shard before FIFO eviction (≥ 1).
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            capacity_per_shard: 1 << 16,
        }
    }
}

impl CacheConfig {
    /// A config with `shards` shards and the default per-shard capacity.
    pub fn with_shards(shards: usize) -> Self {
        CacheConfig {
            shards,
            ..CacheConfig::default()
        }
    }
}

struct ShardState {
    map: HashMap<Vec<u64>, ObjectivePoint>,
    /// Insertion order of `map` keys, for FIFO eviction.
    order: VecDeque<Vec<u64>>,
    /// Keys currently being evaluated by some thread.
    inflight: HashSet<Vec<u64>>,
}

struct Shard {
    state: Mutex<ShardState>,
    ready: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            state: Mutex::new(ShardState {
                map: HashMap::new(),
                order: VecDeque::new(),
                inflight: HashSet::new(),
            }),
            ready: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }
}

/// Per-shard statistics snapshot (see [`CachedEvaluator::shard_stats`]).
#[derive(Clone, Copy, Debug)]
pub struct ShardStats {
    /// Cache hits on this shard (including coalesced in-flight waits).
    pub hits: u64,
    /// Inner evaluations run for this shard.
    pub misses: u64,
    /// Entries evicted from this shard.
    pub evictions: u64,
    /// Current entry count.
    pub entries: usize,
}

/// The sharded, bounded memo store itself, decoupled from any one inner
/// evaluator.
///
/// A [`CachedEvaluator`] binds one evaluator to one store; several bindings
/// may share a single `Arc<EvalCache>` when distinct `(task, backend)`
/// oracles must share one memory budget and one statistics surface — the
/// shape the `prefixrl serve` daemon runs, where every job's evaluator is a
/// thin handle over the server's one store. Keys are prefixed with each
/// inner evaluator's [`Evaluator::cache_discriminant`], so co-tenant
/// oracles can never alias an entry.
pub struct EvalCache {
    shards: Vec<Shard>,
    capacity_per_shard: usize,
}

impl EvalCache {
    /// An empty store with explicit sizing.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `capacity_per_shard` is zero.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.capacity_per_shard > 0, "need nonzero shard capacity");
        EvalCache {
            shards: (0..cfg.shards).map(|_| Shard::new()).collect(),
            capacity_per_shard: cfg.capacity_per_shard,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Cache hits so far (a wait on another thread's in-flight evaluation
    /// counts as a hit: the evaluator did not run again).
    pub fn hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Cache misses (inner evaluations) so far.
    pub fn misses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.misses.load(Ordering::Relaxed))
            .sum()
    }

    /// Entries evicted by the per-shard capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.evictions.load(Ordering::Relaxed))
            .sum()
    }

    /// Hit rate in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Number of distinct states currently cached.
    pub fn unique_states(&self) -> usize {
        self.shards.iter().map(|s| lock(&s.state).map.len()).sum()
    }

    /// Per-shard statistics, for load-balance diagnostics.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                evictions: s.evictions.load(Ordering::Relaxed),
                entries: lock(&s.state).map.len(),
            })
            .collect()
    }

    /// Evaluates `graph` through `inner`, memoizing under the inner
    /// evaluator's discriminant-prefixed canonical key. Concurrent misses
    /// on one key run `inner` once; the rest wait on the shard condvar.
    pub fn evaluate_with(&self, inner: &dyn Evaluator, graph: &PrefixGraph) -> ObjectivePoint {
        let key = Self::key_of(inner.cache_discriminant(), graph);
        let shard = self.shard_for(&key);
        let mut state = lock(&shard.state);
        loop {
            if let Some(p) = state.map.get(&key) {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                return *p;
            }
            if state.inflight.contains(&key) {
                // Another thread is evaluating this exact state: wait and
                // re-check (the result lands in `map`; if capacity pressure
                // evicted it before we woke, fall through to a fresh miss).
                state = shard.ready.wait(state).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            break;
        }
        state.inflight.insert(key.clone());
        drop(state);

        let mut guard = InflightGuard {
            shard,
            key: &key,
            armed: true,
        };
        let point = inner.evaluate(graph);
        guard.armed = false;
        drop(guard); // releases the borrow of `key`; disarmed, so a no-op

        let mut state = lock(&shard.state);
        state.inflight.remove(&key);
        while state.map.len() >= self.capacity_per_shard {
            let Some(oldest) = state.order.pop_front() else {
                break;
            };
            state.map.remove(&oldest);
            shard.evictions.fetch_add(1, Ordering::Relaxed);
        }
        if state.map.insert(key.clone(), point).is_none() {
            state.order.push_back(key);
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        drop(state);
        shard.ready.notify_all();
        point
    }

    /// The cache key of `graph` under an evaluator discriminant: the
    /// discriminant word followed by the canonical present-node bitset.
    fn key_of(discriminant: u64, graph: &PrefixGraph) -> Vec<u64> {
        let canon = graph.canonical_key();
        let mut key = Vec::with_capacity(canon.len() + 1);
        key.push(discriminant);
        key.extend(canon);
        key
    }

    fn shard_for(&self, key: &[u64]) -> &Shard {
        // FNV-1a over the key words; shards are typically a power of two
        // but any count works with the modulo.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in key {
            h ^= word;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }
}

/// A thread-safe, sharded, bounded memoizing wrapper around any
/// [`Evaluator`]: one evaluator bound to an [`EvalCache`] store (its own by
/// default, or a shared one via [`CachedEvaluator::with_store`]).
pub struct CachedEvaluator<E> {
    inner: E,
    store: std::sync::Arc<EvalCache>,
}

impl<E: Evaluator> CachedEvaluator<E> {
    /// Wraps an evaluator with the default configuration (16 shards,
    /// 65 536 entries each).
    pub fn new(inner: E) -> Self {
        Self::with_config(inner, CacheConfig::default())
    }

    /// Wraps an evaluator with explicit sizing.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `capacity_per_shard` is zero.
    pub fn with_config(inner: E, cfg: CacheConfig) -> Self {
        Self::with_store(inner, std::sync::Arc::new(EvalCache::new(cfg)))
    }

    /// Binds an evaluator to an existing (possibly shared) store. Entries
    /// from co-tenant evaluators are isolated by the discriminant prefix;
    /// the statistics accessors report the *store's* aggregate counters.
    pub fn with_store(inner: E, store: std::sync::Arc<EvalCache>) -> Self {
        CachedEvaluator { inner, store }
    }

    /// The backing store (hand a clone to another binding to share it).
    pub fn store(&self) -> &std::sync::Arc<EvalCache> {
        &self.store
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.store.shards()
    }

    /// Cache hits so far (a wait on another thread's in-flight evaluation
    /// counts as a hit: the evaluator did not run again).
    pub fn hits(&self) -> u64 {
        self.store.hits()
    }

    /// Cache misses (inner evaluations) so far.
    pub fn misses(&self) -> u64 {
        self.store.misses()
    }

    /// Entries evicted by the per-shard capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.store.evictions()
    }

    /// Hit rate in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        self.store.hit_rate()
    }

    /// Number of distinct states currently cached.
    pub fn unique_states(&self) -> usize {
        self.store.unique_states()
    }

    /// Per-shard statistics, for load-balance diagnostics.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.store.shard_stats()
    }

    /// Access to the wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The cache key of `graph` under the wrapped evaluator.
    #[cfg(test)]
    fn key_of(&self, graph: &PrefixGraph) -> Vec<u64> {
        EvalCache::key_of(self.inner.cache_discriminant(), graph)
    }
}

fn lock(m: &Mutex<ShardState>) -> std::sync::MutexGuard<'_, ShardState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Unwind guard for an in-flight key: if the inner evaluator panics, the
/// key must leave the in-flight set and waiters must be woken, or every
/// thread blocked on that state would hang forever. The success path
/// disarms it and does its own (result-inserting) cleanup.
struct InflightGuard<'a> {
    shard: &'a Shard,
    key: &'a [u64],
    armed: bool,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            lock(&self.shard.state).inflight.remove(self.key);
            self.shard.ready.notify_all();
        }
    }
}

impl<E: Evaluator> Evaluator for CachedEvaluator<E> {
    fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
        self.store.evaluate_with(&self.inner, graph)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn cache_discriminant(&self) -> u64 {
        self.inner.cache_discriminant()
    }

    fn bound_task_id(&self) -> Option<&str> {
        self.inner.bound_task_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Adder, TaskEvaluator};
    use prefix_graph::{structures, Action, Node};
    use std::sync::Arc;

    fn adder_analytical() -> TaskEvaluator {
        TaskEvaluator::analytical(Adder)
    }

    #[test]
    fn caches_repeat_evaluations() {
        let ev = CachedEvaluator::new(adder_analytical());
        let g = structures::sklansky(8);
        let a = ev.evaluate(&g);
        let b = ev.evaluate(&g);
        assert_eq!(a, b);
        assert_eq!(ev.hits(), 1);
        assert_eq!(ev.misses(), 1);
        assert_eq!(ev.unique_states(), 1);
        assert!((ev.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_states_miss() {
        let ev = CachedEvaluator::new(adder_analytical());
        let g = prefix_graph::PrefixGraph::ripple(8);
        ev.evaluate(&g);
        let g2 = g.with_action(Action::Add(Node::new(5, 2))).unwrap();
        ev.evaluate(&g2);
        assert_eq!(ev.misses(), 2);
        assert_eq!(ev.hits(), 0);
    }

    #[test]
    fn same_structure_different_construction_hits() {
        let ev = CachedEvaluator::new(adder_analytical());
        let mut a = prefix_graph::PrefixGraph::ripple(8);
        a.apply(Action::Add(Node::new(6, 3))).unwrap();
        let b = prefix_graph::PrefixGraph::from_min_nodes(8, [Node::new(6, 3)]);
        ev.evaluate(&a);
        ev.evaluate(&b);
        assert_eq!(ev.hits(), 1, "canonical key must unify equal graphs");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let ev = Arc::new(CachedEvaluator::new(adder_analytical()));
        let graphs: Vec<_> = (0..4)
            .map(|i| {
                let mut g = prefix_graph::PrefixGraph::ripple(10);
                g.apply(Action::Add(Node::new(7 - i, 2))).unwrap();
                g
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ev = Arc::clone(&ev);
                let graphs = graphs.clone();
                s.spawn(move || {
                    for g in &graphs {
                        ev.evaluate(g);
                    }
                });
            }
        });
        assert_eq!(ev.unique_states(), 4);
        assert_eq!(ev.hits() + ev.misses(), 16);
    }

    /// An evaluator that counts invocations and is slow enough that
    /// concurrent misses on one state overlap deterministically.
    struct SlowCounting {
        calls: AtomicU64,
    }

    impl Evaluator for SlowCounting {
        fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
            self.calls.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(100));
            ObjectivePoint {
                area: graph.size() as f64,
                delay: graph.depth() as f64,
            }
        }

        fn name(&self) -> &str {
            "slow-counting"
        }
    }

    #[test]
    fn concurrent_misses_on_same_state_evaluate_once() {
        let ev = Arc::new(CachedEvaluator::new(SlowCounting {
            calls: AtomicU64::new(0),
        }));
        let g = structures::sklansky(8);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ev = Arc::clone(&ev);
                let g = g.clone();
                s.spawn(move || ev.evaluate(&g));
            }
        });
        assert_eq!(
            ev.inner().calls.load(Ordering::SeqCst),
            1,
            "in-flight dedup must run the evaluator once"
        );
        assert_eq!(ev.misses(), 1);
        assert_eq!(ev.hits(), 3, "waiters count as hits");
    }

    #[test]
    fn panicking_evaluator_does_not_strand_waiters() {
        struct PanicOnce {
            panicked: std::sync::atomic::AtomicBool,
        }

        impl Evaluator for PanicOnce {
            fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
                if !self.panicked.swap(true, Ordering::SeqCst) {
                    panic!("synthetic evaluator failure");
                }
                ObjectivePoint {
                    area: graph.size() as f64,
                    delay: 1.0,
                }
            }

            fn name(&self) -> &str {
                "panic-once"
            }
        }

        let ev = Arc::new(CachedEvaluator::new(PanicOnce {
            panicked: std::sync::atomic::AtomicBool::new(false),
        }));
        let g = structures::sklansky(8);
        // First evaluation panics inside the inner evaluator.
        let first = std::thread::scope(|s| s.spawn(|| ev.evaluate(&g)).join());
        assert!(first.is_err(), "first call must panic");
        // The in-flight entry must have been cleaned up by the unwind
        // guard, so a retry completes instead of hanging on the condvar.
        let (tx, rx) = std::sync::mpsc::channel();
        let retry_ev = Arc::clone(&ev);
        let retry_g = g.clone();
        std::thread::spawn(move || {
            let _ = tx.send(retry_ev.evaluate(&retry_g));
        });
        let point = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("retry hung: panicking evaluator leaked its in-flight key");
        assert_eq!(point.area, g.size() as f64);
        assert_eq!(ev.misses(), 1, "only the successful retry counts");
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let ev = CachedEvaluator::with_config(
            adder_analytical(),
            CacheConfig {
                shards: 1,
                capacity_per_shard: 1,
            },
        );
        let g1 = prefix_graph::PrefixGraph::ripple(8);
        let g2 = structures::sklansky(8);
        ev.evaluate(&g1);
        ev.evaluate(&g2); // evicts g1
        assert_eq!(ev.unique_states(), 1);
        assert_eq!(ev.evictions(), 1);
        ev.evaluate(&g1); // miss again
        assert_eq!(ev.misses(), 3);
        assert_eq!(ev.hits(), 0);
    }

    #[test]
    fn shard_stats_cover_all_queries() {
        let ev = CachedEvaluator::with_config(adder_analytical(), CacheConfig::with_shards(8));
        assert_eq!(ev.shards(), 8);
        let mut g = prefix_graph::PrefixGraph::ripple(12);
        for m in 2..12u16 {
            g.apply(Action::Add(Node::new(m, 1))).ok();
            ev.evaluate(&g);
            ev.evaluate(&g);
        }
        let stats = ev.shard_stats();
        assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), ev.hits());
        assert_eq!(stats.iter().map(|s| s.misses).sum::<u64>(), ev.misses());
        assert_eq!(
            stats.iter().map(|s| s.entries).sum::<usize>(),
            ev.unique_states()
        );
        assert!(stats.iter().any(|s| s.entries > 0));
    }

    /// An oracle whose discriminant (and result) switches at runtime,
    /// standing in for two tasks sharing one cache: if the discriminant
    /// were not part of the key, mode B would hit mode A's stale entry.
    struct SwitchingOracle {
        mode_b: std::sync::atomic::AtomicBool,
    }

    impl Evaluator for SwitchingOracle {
        fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
            let scale = if self.mode_b.load(Ordering::SeqCst) {
                100.0
            } else {
                1.0
            };
            ObjectivePoint {
                area: graph.size() as f64 * scale,
                delay: graph.depth() as f64 * scale,
            }
        }

        fn name(&self) -> &str {
            "switching"
        }

        fn cache_discriminant(&self) -> u64 {
            self.mode_b.load(Ordering::SeqCst) as u64
        }
    }

    #[test]
    fn discriminant_keeps_oracles_from_aliasing() {
        let ev = CachedEvaluator::new(SwitchingOracle {
            mode_b: std::sync::atomic::AtomicBool::new(false),
        });
        let g = structures::sklansky(8);
        let a = ev.evaluate(&g);
        assert_eq!(a.area, g.size() as f64);
        ev.inner().mode_b.store(true, Ordering::SeqCst);
        let b = ev.evaluate(&g);
        assert_eq!(
            b.area,
            g.size() as f64 * 100.0,
            "cache served a stale point across discriminants"
        );
        assert_eq!(ev.misses(), 2, "same graph, different discriminant: miss");
        assert_eq!(ev.hits(), 0);
        assert_eq!(ev.unique_states(), 2, "both keys live side by side");
        // Flipping back hits the original entry.
        ev.inner().mode_b.store(false, Ordering::SeqCst);
        assert_eq!(ev.evaluate(&g), a);
        assert_eq!(ev.hits(), 1);
    }

    #[test]
    fn task_evaluators_get_distinct_keys() {
        use crate::task::PrefixOr;
        let adder = CachedEvaluator::new(adder_analytical());
        let or = CachedEvaluator::new(TaskEvaluator::analytical(PrefixOr));
        let g = structures::sklansky(8);
        assert_ne!(
            adder.key_of(&g),
            or.key_of(&g),
            "same graph must key differently per task"
        );
        assert_eq!(adder.key_of(&g)[1..], or.key_of(&g)[1..], "same canon");
    }

    #[test]
    fn shared_store_isolates_tenants_and_pools_stats() {
        use crate::task::PrefixOr;
        let store = Arc::new(EvalCache::new(CacheConfig::with_shards(4)));
        let adder = CachedEvaluator::with_store(adder_analytical(), Arc::clone(&store));
        let or =
            CachedEvaluator::with_store(TaskEvaluator::analytical(PrefixOr), Arc::clone(&store));
        let g = structures::sklansky(8);
        let a = adder.evaluate(&g);
        // Same graph through the co-tenant binding: its own miss, never
        // the adder's entry (analytical points coincide numerically, so
        // assert via the counters, not the values).
        let _ = or.evaluate(&g);
        assert_eq!(store.misses(), 2, "tenants must not alias entries");
        assert_eq!(store.unique_states(), 2);
        // Re-querying through either binding hits the one shared store.
        assert_eq!(adder.evaluate(&g), a);
        let _ = or.evaluate(&g);
        assert_eq!(store.hits(), 2);
        assert_eq!(adder.hits(), store.hits(), "bindings report store stats");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = CachedEvaluator::with_config(
            adder_analytical(),
            CacheConfig {
                shards: 0,
                capacity_per_shard: 1,
            },
        );
    }
}
