//! The synthesis-result cache (paper Section IV-D).
//!
//! Synthesis is the dominant training cost, and prefix-graph states recur
//! as ε decays — the paper reports cache hit rates reaching 50% (32b) and
//! 10% (64b). The cache keys on the canonical present-node bitset of the
//! graph, so structurally identical states share one evaluation across all
//! actors.

use crate::evaluator::{Evaluator, ObjectivePoint};
use parking_lot::Mutex;
use prefix_graph::PrefixGraph;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A thread-safe memoizing wrapper around any [`Evaluator`].
pub struct CachedEvaluator<E> {
    inner: E,
    map: Mutex<HashMap<Vec<u64>, ObjectivePoint>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<E: Evaluator> CachedEvaluator<E> {
    /// Wraps an evaluator with an unbounded cache.
    pub fn new(inner: E) -> Self {
        CachedEvaluator {
            inner,
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (inner evaluations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit rate in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Number of distinct states evaluated.
    pub fn unique_states(&self) -> usize {
        self.map.lock().len()
    }

    /// Access to the wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: Evaluator> Evaluator for CachedEvaluator<E> {
    fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
        let key = graph.canonical_key();
        if let Some(p) = self.map.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *p;
        }
        // Evaluate outside the lock so concurrent misses on different
        // states proceed in parallel (duplicate work on the same state is
        // possible but harmless — the evaluator is deterministic).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let p = self.inner.evaluate(graph);
        self.map.lock().insert(key, p);
        p
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::AnalyticalEvaluator;
    use prefix_graph::{structures, Action, Node};

    #[test]
    fn caches_repeat_evaluations() {
        let ev = CachedEvaluator::new(AnalyticalEvaluator);
        let g = structures::sklansky(8);
        let a = ev.evaluate(&g);
        let b = ev.evaluate(&g);
        assert_eq!(a, b);
        assert_eq!(ev.hits(), 1);
        assert_eq!(ev.misses(), 1);
        assert_eq!(ev.unique_states(), 1);
        assert!((ev.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_states_miss() {
        let ev = CachedEvaluator::new(AnalyticalEvaluator);
        let g = prefix_graph::PrefixGraph::ripple(8);
        ev.evaluate(&g);
        let g2 = g.with_action(Action::Add(Node::new(5, 2))).unwrap();
        ev.evaluate(&g2);
        assert_eq!(ev.misses(), 2);
        assert_eq!(ev.hits(), 0);
    }

    #[test]
    fn same_structure_different_construction_hits() {
        let ev = CachedEvaluator::new(AnalyticalEvaluator);
        let mut a = prefix_graph::PrefixGraph::ripple(8);
        a.apply(Action::Add(Node::new(6, 3))).unwrap();
        let b = prefix_graph::PrefixGraph::from_min_nodes(8, [Node::new(6, 3)]);
        ev.evaluate(&a);
        ev.evaluate(&b);
        assert_eq!(ev.hits(), 1, "canonical key must unify equal graphs");
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let ev = Arc::new(CachedEvaluator::new(AnalyticalEvaluator));
        let graphs: Vec<_> = (0..4)
            .map(|i| {
                let mut g = prefix_graph::PrefixGraph::ripple(10);
                g.apply(Action::Add(Node::new(7 - i, 2))).unwrap();
                g
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ev = Arc::clone(&ev);
                let graphs = graphs.clone();
                s.spawn(move || {
                    for g in &graphs {
                        ev.evaluate(g);
                    }
                });
            }
        });
        assert_eq!(ev.unique_states(), 4);
        assert_eq!(ev.hits() + ev.misses(), 16);
    }
}
