//! Frontier assembly: synthesize design sets at many delay targets and bin
//! into Pareto fronts — the procedure behind every figure of the paper
//! ("we synthesize the various adders … at 40 delay targets … bin all adder
//! circuits for an approach and present the area-delay Pareto front").
//!
//! Sweeps are generalized over the circuit task: [`sweep_task_front`]
//! synthesizes whatever netlist the [`CircuitTask`] emits (adder,
//! OR-prefix, incrementer, …); [`sweep_front`] is the adder shorthand the
//! figure harnesses use.

use crate::evaluator::ObjectivePoint;
use crate::pareto::ParetoFront;
use crate::task::{Adder, CircuitTask};
use netlist::Library;
use prefix_graph::PrefixGraph;
use std::sync::atomic::{AtomicUsize, Ordering};
use synth::sweep::{sweep_netlist, SweepConfig};

/// Evenly spaced target fractions of the unoptimized delay, for dense
/// frontier sweeps (the paper uses 40 targets; figures here default lower).
pub fn target_fractions(count: usize) -> Vec<f64> {
    assert!(count >= 2, "need at least two targets");
    (0..count)
        .map(|i| 0.28 + (1.05 - 0.28) * i as f64 / (count - 1) as f64)
        .collect()
}

/// Synthesizes every labelled graph's **task netlist** at `targets` delay
/// targets (in parallel over `threads` workers) and bins all achieved
/// points into one Pareto front with the design label as payload.
pub fn sweep_task_front(
    task: &dyn CircuitTask,
    designs: &[(String, PrefixGraph)],
    lib: &Library,
    base: &SweepConfig,
    targets: usize,
    threads: usize,
) -> ParetoFront<String> {
    let cfg = SweepConfig {
        target_fractions: target_fractions(targets),
        ..base.clone()
    };
    let next = AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Vec<(ObjectivePoint, String)>>> = (0..designs.len())
        .map(|_| parking_lot::Mutex::new(Vec::new()))
        .collect();
    std::thread::scope(|s| {
        for _ in 0..threads.max(1).min(designs.len().max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= designs.len() {
                    break;
                }
                let (label, graph) = &designs[i];
                let curve = sweep_netlist(&task.emit_netlist(graph), lib, &cfg);
                let points: Vec<(ObjectivePoint, String)> = curve
                    .knots()
                    .map(|(delay, area)| (ObjectivePoint { area, delay }, label.clone()))
                    .collect();
                *results[i].lock() = points;
            });
        }
    });
    let mut front = ParetoFront::new();
    for cell in results {
        for (p, label) in cell.into_inner() {
            front.insert(p, label);
        }
    }
    front
}

/// [`sweep_task_front`] for the adder task (the paper's figures).
pub fn sweep_front(
    designs: &[(String, PrefixGraph)],
    lib: &Library,
    base: &SweepConfig,
    targets: usize,
    threads: usize,
) -> ParetoFront<String> {
    sweep_task_front(&Adder, designs, lib, base, targets, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::PrefixOr;
    use prefix_graph::structures;

    #[test]
    fn fractions_are_increasing_and_bounded() {
        let f = target_fractions(10);
        assert_eq!(f.len(), 10);
        assert!(f.windows(2).all(|w| w[0] < w[1]));
        assert!(f[0] > 0.2 && *f.last().unwrap() < 1.2);
    }

    #[test]
    fn sweep_front_bins_multiple_designs() {
        let lib = Library::nangate45();
        let designs = vec![
            ("sklansky".to_string(), structures::sklansky(8)),
            ("brent_kung".to_string(), structures::brent_kung(8)),
            ("ripple".to_string(), prefix_graph::PrefixGraph::ripple(8)),
        ];
        let front = sweep_front(&designs, &lib, &SweepConfig::fast(), 4, 3);
        assert!(!front.is_empty());
        // The front must mix architectures: ripple owns the slow/small end
        // and a log-depth tree the fast end.
        let labels: std::collections::HashSet<&String> = front.iter().map(|(_, l)| l).collect();
        assert!(labels.len() >= 2, "front degenerate: {labels:?}");
    }

    #[test]
    fn task_fronts_reflect_task_circuits() {
        // OR-prefix circuits cost one gate per node, so their whole front
        // must sit at a fraction of the adder front's area.
        let lib = Library::nangate45();
        let designs = vec![("sklansky".to_string(), structures::sklansky(8))];
        let cfg = SweepConfig::fast();
        let adder = sweep_task_front(&Adder, &designs, &lib, &cfg, 3, 1);
        let or = sweep_task_front(&PrefixOr, &designs, &lib, &cfg, 3, 1);
        assert!(!adder.is_empty() && !or.is_empty());
        let max_or = or.points().iter().map(|p| p.area).fold(0.0, f64::max);
        let min_adder = adder
            .points()
            .iter()
            .map(|p| p.area)
            .fold(f64::INFINITY, f64::min);
        assert!(
            max_or < min_adder,
            "or front ({max_or}) must undercut adder front ({min_adder})"
        );
    }
}
