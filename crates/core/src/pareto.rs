//! Pareto-front utilities for (area, delay) minimization.
//!
//! Every figure in the paper's evaluation is an area-delay Pareto front of
//! binned synthesis results; this module maintains such fronts and computes
//! the paper's headline comparison metric — percent area improvement at
//! equal delay (e.g. "up to 16.0% lower area for the same delay" in the
//! 32-bit setting).

use crate::evaluator::ObjectivePoint;
use serde::{Deserialize, Serialize};

/// Absolute slack applied when checking a delay target (ns at synthesis
/// scale): a point whose delay exceeds the target by less than this still
/// counts as meeting it.
pub const TARGET_EPS: f64 = 1e-9;

/// The commercial-tool selection rule between two candidates at a delay
/// target: meeting the target beats missing it; among candidates that
/// meet it, lower area wins; among candidates that miss it, lower delay
/// wins (be as fast as possible when timing cannot be met). Returns
/// `true` when `candidate` should replace `incumbent`.
///
/// Shared by `baselines::choose_at_target_with` and the serve query
/// tier's `best_at_delay`, so the CLI baseline sweep and a served query
/// answer the same question identically.
pub fn better_at_target(
    candidate: &ObjectivePoint,
    incumbent: &ObjectivePoint,
    target: f64,
) -> bool {
    let c_met = candidate.delay <= target + TARGET_EPS;
    let i_met = incumbent.delay <= target + TARGET_EPS;
    match (c_met, i_met) {
        (true, false) => true,
        (false, true) => false,
        (true, true) => candidate.area < incumbent.area,
        (false, false) => candidate.delay < incumbent.delay,
    }
}

/// A minimization Pareto front over `(area, delay)` with payloads.
///
/// Inserting a dominated point is a no-op; inserting a dominating point
/// evicts everything it dominates. Points are kept sorted by delay.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParetoFront<T> {
    entries: Vec<(ObjectivePoint, T)>,
}

impl<T> Default for ParetoFront<T> {
    fn default() -> Self {
        ParetoFront {
            entries: Vec::new(),
        }
    }
}

impl<T> ParetoFront<T> {
    /// Creates an empty front.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of non-dominated points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offers a point; returns `true` if it joined the front.
    ///
    /// Filtering uses the one shared dominance definition on
    /// [`ObjectivePoint`]: a candidate weakly dominated by a member
    /// (strictly worse, or an exact duplicate) is rejected; an accepted
    /// candidate evicts every member it strictly dominates.
    pub fn insert(&mut self, point: ObjectivePoint, payload: T) -> bool {
        if !point.area.is_finite() || !point.delay.is_finite() {
            return false;
        }
        if self.entries.iter().any(|(p, _)| p.weakly_dominates(&point)) {
            return false;
        }
        self.entries.retain(|(p, _)| !point.dominates(p));
        let pos = self.entries.partition_point(|(p, _)| p.delay < point.delay);
        self.entries.insert(pos, (point, payload));
        true
    }

    /// Iterates points and payloads in increasing-delay order.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectivePoint, &T)> {
        self.entries.iter().map(|(p, t)| (p, t))
    }

    /// The points only, in increasing-delay order.
    pub fn points(&self) -> Vec<ObjectivePoint> {
        self.entries.iter().map(|(p, _)| *p).collect()
    }

    /// Whether any member dominates `point`.
    pub fn dominates_point(&self, point: &ObjectivePoint) -> bool {
        self.entries.iter().any(|(p, _)| p.dominates(point))
    }

    /// The smallest area this front achieves at delay ≤ `delay`
    /// (a step-function query), or `None` if no member is fast enough.
    pub fn area_at_delay(&self, delay: f64) -> Option<f64> {
        self.entries
            .iter()
            .filter(|(p, _)| p.delay <= delay + 1e-12)
            .map(|(p, _)| p.area)
            .fold(None, |acc, a| Some(acc.map_or(a, |b: f64| b.min(a))))
    }

    /// The paper's comparison metric: for each point of `baseline`, the
    /// percent area saving this front achieves at the same (or lower)
    /// delay. Returns `(max_saving_pct, delay_at_max)`, ignoring baseline
    /// delays this front cannot reach.
    pub fn max_area_saving_vs<U>(&self, baseline: &ParetoFront<U>) -> Option<(f64, f64)> {
        let mut best: Option<(f64, f64)> = None;
        for (bp, _) in &baseline.entries {
            if let Some(area) = self.area_at_delay(bp.delay) {
                let saving = 100.0 * (bp.area - area) / bp.area;
                if best.map(|(s, _)| saving > s).unwrap_or(true) {
                    best = Some((saving, bp.delay));
                }
            }
        }
        best
    }

    /// Whether every baseline point is weakly dominated (this front achieves
    /// no-worse area at every baseline delay).
    pub fn pareto_dominates<U>(&self, baseline: &ParetoFront<U>) -> bool {
        baseline.entries.iter().all(|(bp, _)| {
            self.area_at_delay(bp.delay)
                .map(|a| a <= bp.area + 1e-12)
                .unwrap_or(false)
        })
    }
}

impl<T> FromIterator<(ObjectivePoint, T)> for ParetoFront<T> {
    fn from_iter<I: IntoIterator<Item = (ObjectivePoint, T)>>(iter: I) -> Self {
        let mut front = ParetoFront::new();
        for (p, t) in iter {
            front.insert(p, t);
        }
        front
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(area: f64, delay: f64) -> ObjectivePoint {
        ObjectivePoint { area, delay }
    }

    #[test]
    fn keeps_only_nondominated() {
        let mut f = ParetoFront::new();
        assert!(f.insert(pt(100.0, 1.0), "a"));
        assert!(f.insert(pt(50.0, 2.0), "b"));
        assert!(!f.insert(pt(120.0, 1.5), "dominated"));
        assert!(f.insert(pt(80.0, 1.2), "c"));
        assert_eq!(f.len(), 3);
        // A point dominating everything evicts all.
        assert!(f.insert(pt(10.0, 0.5), "win"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn sorted_by_delay() {
        let mut f = ParetoFront::new();
        f.insert(pt(50.0, 3.0), 0);
        f.insert(pt(100.0, 1.0), 1);
        f.insert(pt(75.0, 2.0), 2);
        let delays: Vec<f64> = f.points().iter().map(|p| p.delay).collect();
        assert_eq!(delays, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn area_at_delay_is_step_function() {
        let mut f = ParetoFront::new();
        f.insert(pt(100.0, 1.0), ());
        f.insert(pt(60.0, 2.0), ());
        assert_eq!(f.area_at_delay(0.5), None);
        assert_eq!(f.area_at_delay(1.0), Some(100.0));
        assert_eq!(f.area_at_delay(1.5), Some(100.0));
        assert_eq!(f.area_at_delay(5.0), Some(60.0));
    }

    #[test]
    fn area_saving_metric() {
        let mut ours = ParetoFront::new();
        ours.insert(pt(84.0, 1.0), ());
        ours.insert(pt(50.0, 2.0), ());
        let mut base = ParetoFront::new();
        base.insert(pt(100.0, 1.0), ());
        base.insert(pt(80.0, 2.0), ());
        let (saving, at) = ours.max_area_saving_vs(&base).unwrap();
        assert!((saving - 37.5).abs() < 1e-9, "saving {saving}");
        assert_eq!(at, 2.0);
        assert!(ours.pareto_dominates(&base));
        assert!(!base.pareto_dominates(&ours));
    }

    #[test]
    fn equal_points_not_duplicated() {
        let mut f = ParetoFront::new();
        assert!(f.insert(pt(10.0, 1.0), 1));
        assert!(!f.insert(pt(10.0, 1.0), 2));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn better_at_target_follows_commercial_rule() {
        let target = 1.0;
        // Meeting the target beats missing it, in both directions.
        assert!(better_at_target(&pt(90.0, 0.9), &pt(10.0, 1.5), target));
        assert!(!better_at_target(&pt(10.0, 1.5), &pt(90.0, 0.9), target));
        // Both meet: lower area wins.
        assert!(better_at_target(&pt(50.0, 1.0), &pt(60.0, 0.5), target));
        assert!(!better_at_target(&pt(60.0, 0.5), &pt(50.0, 1.0), target));
        // Neither meets: lower delay wins.
        assert!(better_at_target(&pt(90.0, 1.2), &pt(10.0, 1.4), target));
        assert!(!better_at_target(&pt(10.0, 1.4), &pt(90.0, 1.2), target));
        // The 1e-9 slack counts a hairline miss as met.
        assert!(better_at_target(
            &pt(50.0, 1.0 + 0.5e-9),
            &pt(10.0, 1.5),
            target
        ));
    }

    #[test]
    fn nonfinite_points_rejected() {
        let mut f: ParetoFront<()> = ParetoFront::new();
        assert!(!f.insert(pt(f64::NAN, 1.0), ()));
        assert!(!f.insert(pt(1.0, f64::INFINITY), ()));
        assert!(f.is_empty());
    }
}
