//! The convolutional residual Q-network (paper Fig. 2).
//!
//! Input: the `N×N×4` node-feature tensor. Body: a 3×3 convolution into `C`
//! channels (BN + LReLU), then `B` residual blocks of two 5×5 convolutions.
//! Head: a 1×1 convolution (BN + LReLU) and a final 1×1 convolution to 4
//! output channels holding, per grid position,
//! `[Q_area(add), Q_area(del), Q_delay(add), Q_delay(del)]`.
//!
//! The paper uses `B = 32, C = 256`; the defaults here are scaled for CPU
//! training (see DESIGN.md §8) with the paper values available via
//! [`QNetConfig::paper`].

use nn::{Adam, BatchNorm2d, Conv2d, Layer, LeakyReLU, ResidualBlock, Sequential, Tensor};
use rl::QNetwork;
use serde::{Deserialize, Serialize};

/// Q-network hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QNetConfig {
    /// Grid width `N`.
    pub n: u16,
    /// Feature channels `C`.
    pub channels: usize,
    /// Residual blocks `B`.
    pub blocks: usize,
    /// Adam learning rate (paper: 4e-5 at full scale).
    pub lr: f32,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl QNetConfig {
    /// The paper's full-scale configuration (Table I: B=32, C=256 for
    /// 32b/64b; B=16 for 16b).
    pub fn paper(n: u16) -> Self {
        QNetConfig {
            n,
            channels: 256,
            blocks: if n <= 16 { 16 } else { 32 },
            lr: 4e-5,
            seed: 0,
        }
    }

    /// A CPU-tractable configuration for experiments (~8 ms per training
    /// step at N=8, ~30 ms at N=16 on one core).
    pub fn small(n: u16) -> Self {
        QNetConfig {
            n,
            channels: 12,
            blocks: 1,
            lr: 1e-3,
            seed: 0,
        }
    }

    /// A minimal configuration for unit tests.
    pub fn tiny(n: u16) -> Self {
        QNetConfig {
            n,
            channels: 8,
            blocks: 1,
            lr: 2e-3,
            seed: 0,
        }
    }
}

/// The PrefixRL Q-network: implements [`rl::QNetwork`] over the flat
/// `2·N²` add/delete action space.
pub struct PrefixQNet {
    net: Sequential,
    opt: Adam,
    n: usize,
}

impl PrefixQNet {
    /// Builds the Fig. 2 architecture.
    pub fn new(cfg: &QNetConfig) -> Self {
        let c = cfg.channels;
        let s = cfg.seed;
        let mut layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new_no_bias(4, c, 3, s)),
            Box::new(BatchNorm2d::new(c)),
            Box::new(LeakyReLU::default()),
        ];
        for b in 0..cfg.blocks {
            layers.push(Box::new(ResidualBlock::paper(c, s + 100 + 2 * b as u64)));
        }
        layers.push(Box::new(Conv2d::new_no_bias(c, c, 1, s + 7000)));
        layers.push(Box::new(BatchNorm2d::new(c)));
        layers.push(Box::new(LeakyReLU::default()));
        layers.push(Box::new(Conv2d::new(c, 4, 1, s + 7001)));
        PrefixQNet {
            net: Sequential::new(layers),
            opt: Adam::new(cfg.lr),
            n: cfg.n as usize,
        }
    }

    /// The grid width `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Snapshots the Adam optimizer state (moments + step counter) —
    /// required alongside [`rl::QNetwork::state`] for bit-identical
    /// checkpoint resume.
    pub fn opt_state(&self) -> nn::AdamState {
        self.opt.state()
    }

    /// Restores optimizer state captured by [`PrefixQNet::opt_state`].
    ///
    /// Validates the moment tensors against this network's parameter
    /// shapes before handing them to the optimizer — a freshly built
    /// [`Adam`](nn::Adam) has no moments of its own to check against, so
    /// without this a truncated checkpoint would resume silently wrong (or
    /// panic mid-training) instead of failing here.
    ///
    /// # Errors
    ///
    /// Fails on architecture mismatch. An empty snapshot (optimizer that
    /// never stepped) is accepted.
    pub fn load_opt_state(&mut self, state: &nn::AdamState) -> Result<(), String> {
        if !state.m.is_empty() {
            let mut shapes = Vec::new();
            self.net.visit_params(&mut |p| shapes.push(p.data.len()));
            for (name, moments) in [("first", &state.m), ("second", &state.v)] {
                if moments.len() != shapes.len() {
                    return Err(format!(
                        "Adam state has {} {name}-moment tensors, network has {} parameters",
                        moments.len(),
                        shapes.len()
                    ));
                }
                for (i, (m, expected)) in moments.iter().zip(&shapes).enumerate() {
                    if m.len() != *expected {
                        return Err(format!(
                            "Adam {name} moment {i}: expected {expected} values, got {}",
                            m.len()
                        ));
                    }
                }
            }
        }
        self.opt.load_state(state)
    }

    /// Serializes parameters to bytes (checkpointing).
    pub fn to_bytes(&mut self) -> Vec<u8> {
        nn::serialize::to_bytes(&mut self.net)
    }

    /// Restores parameters from bytes.
    ///
    /// # Errors
    ///
    /// Fails on architecture mismatch or truncated data.
    pub fn from_bytes(&mut self, bytes: &[u8]) -> Result<(), String> {
        nn::serialize::from_bytes(&mut self.net, bytes)
    }
}

impl QNetwork for PrefixQNet {
    fn num_actions(&self) -> usize {
        2 * self.n * self.n
    }

    fn forward(&mut self, states: &[&[f32]], train: bool) -> Vec<Vec<[f32; 2]>> {
        let nn_plane = self.n * self.n;
        let feat = 4 * nn_plane;
        let mut flat = Vec::with_capacity(states.len() * feat);
        for s in states {
            assert_eq!(s.len(), feat, "state feature length mismatch");
            flat.extend_from_slice(s);
        }
        let x = Tensor::from_vec([states.len(), 4, self.n, self.n], flat);
        let y = self.net.forward(&x, train);
        // Output channels: 0=Q_area(add), 1=Q_area(del), 2=Q_delay(add),
        // 3=Q_delay(del); flat action kind·N² + pos.
        (0..states.len())
            .map(|b| {
                let base = b * 4 * nn_plane;
                let data = y.data();
                (0..2 * nn_plane)
                    .map(|a| {
                        let (kind, pos) = (a / nn_plane, a % nn_plane);
                        [
                            data[base + kind * nn_plane + pos],
                            data[base + (2 + kind) * nn_plane + pos],
                        ]
                    })
                    .collect()
            })
            .collect()
    }

    fn apply_gradient(&mut self, grad: &[Vec<[f32; 2]>]) {
        let nn_plane = self.n * self.n;
        let mut g = Tensor::zeros([grad.len(), 4, self.n, self.n]);
        for (b, row) in grad.iter().enumerate() {
            assert_eq!(row.len(), 2 * nn_plane, "gradient action count mismatch");
            let base = b * 4 * nn_plane;
            for (a, go) in row.iter().enumerate() {
                let (kind, pos) = (a / nn_plane, a % nn_plane);
                g.data_mut()[base + kind * nn_plane + pos] = go[0];
                g.data_mut()[base + (2 + kind) * nn_plane + pos] = go[1];
            }
        }
        self.net.zero_grad();
        self.net.backward(&g);
        self.opt.step(&mut self.net);
    }

    fn state(&mut self) -> Vec<Vec<f32>> {
        nn::serialize::state(&mut self.net)
    }

    fn load_state(&mut self, state: &[Vec<f32>]) -> Result<(), String> {
        nn::serialize::load_state(&mut self.net, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{EnvConfig, PrefixEnv};
    use crate::evaluator::AnalyticalEvaluator;
    use std::sync::Arc;

    #[test]
    fn output_layout_matches_action_space() {
        let mut q = PrefixQNet::new(&QNetConfig::tiny(8));
        assert_eq!(q.num_actions(), 128);
        let env = PrefixEnv::new(EnvConfig::analytical(8), Arc::new(AnalyticalEvaluator));
        let f = env.features();
        let out = q.forward(&[&f], false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 128);
        assert!(out[0].iter().all(|q| q[0].is_finite() && q[1].is_finite()));
    }

    #[test]
    fn batch_forward_matches_single() {
        let mut q = PrefixQNet::new(&QNetConfig::tiny(8));
        let env = PrefixEnv::new(EnvConfig::analytical(8), Arc::new(AnalyticalEvaluator));
        let f = env.features();
        // Eval mode uses running statistics, so batching must not change
        // per-sample outputs.
        let single = q.forward(&[&f], false);
        let double = q.forward(&[&f, &f], false);
        for a in 0..q.num_actions() {
            assert!((single[0][a][0] - double[1][a][0]).abs() < 1e-5);
            assert!((single[0][a][1] - double[1][a][1]).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_step_moves_selected_q() {
        let mut q = PrefixQNet::new(&QNetConfig::tiny(8));
        let env = PrefixEnv::new(EnvConfig::analytical(8), Arc::new(AnalyticalEvaluator));
        let f = env.features();
        let action = 40usize;
        let before = q.forward(&[&f], false)[0][action];
        // Push Q_area(action) down for a few steps.
        for _ in 0..10 {
            let _ = q.forward(&[&f], true);
            let mut grad = vec![vec![[0.0f32; 2]; q.num_actions()]; 1];
            grad[0][action][0] = 1.0; // dL/dQ > 0 → Q decreases
            q.apply_gradient(&grad);
        }
        let after = q.forward(&[&f], false)[0][action];
        assert!(after[0] < before[0], "{} !< {}", after[0], before[0]);
    }

    #[test]
    fn state_roundtrip_between_instances() {
        let cfg = QNetConfig::tiny(8);
        let mut a = PrefixQNet::new(&cfg);
        let mut b = PrefixQNet::new(&QNetConfig { seed: 42, ..cfg });
        let env = PrefixEnv::new(EnvConfig::analytical(8), Arc::new(AnalyticalEvaluator));
        let f = env.features();
        let s = a.state();
        b.load_state(&s).unwrap();
        let qa = a.forward(&[&f], false);
        let qb = b.forward(&[&f], false);
        assert_eq!(qa[0][5], qb[0][5]);
    }

    #[test]
    fn truncated_adam_state_rejected() {
        let cfg = QNetConfig::tiny(8);
        let mut q = PrefixQNet::new(&cfg);
        // Take one gradient step so the optimizer has real moments.
        let env = PrefixEnv::new(EnvConfig::analytical(8), Arc::new(AnalyticalEvaluator));
        let f = env.features();
        let _ = q.forward(&[&f], true);
        let mut grad = vec![vec![[0.0f32; 2]; q.num_actions()]; 1];
        grad[0][3][0] = 1.0;
        q.apply_gradient(&grad);
        let good = q.opt_state();
        let mut fresh = PrefixQNet::new(&cfg);
        fresh.load_opt_state(&good).unwrap();
        // A fresh optimizer has no moments to validate against, so the
        // network-level check must catch truncation/corruption.
        let mut missing_tensor = good.clone();
        missing_tensor.m.pop();
        missing_tensor.v.pop();
        assert!(PrefixQNet::new(&cfg)
            .load_opt_state(&missing_tensor)
            .is_err());
        let mut short_tensor = good.clone();
        short_tensor.v[0].pop();
        assert!(PrefixQNet::new(&cfg).load_opt_state(&short_tensor).is_err());
    }

    #[test]
    fn checkpoint_bytes_roundtrip() {
        let cfg = QNetConfig::tiny(8);
        let mut a = PrefixQNet::new(&cfg);
        let bytes = a.to_bytes();
        let mut b = PrefixQNet::new(&QNetConfig { seed: 9, ..cfg });
        b.from_bytes(&bytes).unwrap();
        let env = PrefixEnv::new(EnvConfig::analytical(8), Arc::new(AnalyticalEvaluator));
        let f = env.features();
        assert_eq!(a.forward(&[&f], false)[0][0], b.forward(&[&f], false)[0][0]);
    }
}
