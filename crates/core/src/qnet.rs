//! The convolutional residual Q-network (paper Fig. 2).
//!
//! Input: the `N×N×4` node-feature tensor. Body: a 3×3 convolution into `C`
//! channels (BN + LReLU), then `B` residual blocks of two 5×5 convolutions.
//! Head: a 1×1 convolution (BN + LReLU) and a final 1×1 convolution to 4
//! output channels holding, per grid position,
//! `[Q_area(add), Q_area(del), Q_delay(add), Q_delay(del)]`.
//!
//! The network is stored as a *typed* layer tree (not a `Sequential` of
//! boxed layers) so the conv→batch-norm pairs are visible to fusion:
//! [`PrefixQNet::frozen`] folds every batch-norm into its preceding
//! convolution ([`nn::Conv2d::fused`]) and returns a [`FrozenQNet`] — an
//! immutable, `Send + Sync` inference network implementing [`rl::QInfer`]
//! that async actors share behind an `Arc` with zero per-decision weight
//! copies (see `parallel.rs`).
//!
//! The paper uses `B = 32, C = 256`; the defaults here are scaled for CPU
//! training (see DESIGN.md §8) with the paper values available via
//! [`QNetConfig::paper`]. Compute threading follows the global
//! `nn::compute` budget (`--nn-threads`).

use nn::{Adam, BatchNorm2d, Conv2d, Layer, LeakyReLU, Param, Scratch, Tensor};
use rl::{QInfer, QNetwork};
use serde::{Deserialize, Serialize};

/// Q-network hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QNetConfig {
    /// Grid width `N`.
    pub n: u16,
    /// Feature channels `C`.
    pub channels: usize,
    /// Residual blocks `B`.
    pub blocks: usize,
    /// Adam learning rate (paper: 4e-5 at full scale).
    pub lr: f32,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl QNetConfig {
    /// The paper's full-scale configuration (Table I: B=32, C=256 for
    /// 32b/64b; B=16 for 16b).
    pub fn paper(n: u16) -> Self {
        QNetConfig {
            n,
            channels: 256,
            blocks: if n <= 16 { 16 } else { 32 },
            lr: 4e-5,
            seed: 0,
        }
    }

    /// A CPU-tractable configuration for experiments.
    pub fn small(n: u16) -> Self {
        QNetConfig {
            n,
            channels: 12,
            blocks: 1,
            lr: 1e-3,
            seed: 0,
        }
    }

    /// A minimal configuration for unit tests.
    pub fn tiny(n: u16) -> Self {
        QNetConfig {
            n,
            channels: 8,
            blocks: 1,
            lr: 2e-3,
            seed: 0,
        }
    }
}

/// One paper residual block: `LReLU(BN(conv5(LReLU(BN(conv5(x))))) + x)`,
/// with the conv→BN pairs held as typed fields so they can be fused for
/// inference.
struct PaperBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    act1: LeakyReLU,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    act_out: LeakyReLU,
}

impl PaperBlock {
    fn new(channels: usize, seed: u64) -> Self {
        PaperBlock {
            conv1: Conv2d::new_no_bias(channels, channels, 5, seed),
            bn1: BatchNorm2d::new(channels),
            act1: LeakyReLU::default(),
            conv2: Conv2d::new_no_bias(channels, channels, 5, seed.wrapping_add(1)),
            bn2: BatchNorm2d::new(channels),
            act_out: LeakyReLU::default(),
        }
    }
}

impl Layer for PaperBlock {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let a = self.conv1.forward_with(x, train, scratch);
        let b = self.bn1.forward_with(&a, train, scratch);
        scratch.recycle(a);
        let c = self.act1.forward_with(&b, train, scratch);
        scratch.recycle(b);
        let d = self.conv2.forward_with(&c, train, scratch);
        scratch.recycle(c);
        let mut e = self.bn2.forward_with(&d, train, scratch);
        scratch.recycle(d);
        e.add_assign(x);
        let out = self.act_out.forward_with(&e, train, scratch);
        scratch.recycle(e);
        out
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        let g = self.act_out.backward_with(grad_out, scratch);
        let e = self.bn2.backward_with(&g, scratch);
        let d = self.conv2.backward_with(&e, scratch);
        scratch.recycle(e);
        let c = self.act1.backward_with(&d, scratch);
        scratch.recycle(d);
        let b = self.bn1.backward_with(&c, scratch);
        scratch.recycle(c);
        let mut grad_in = self.conv1.backward_with(&b, scratch);
        scratch.recycle(b);
        grad_in.add_assign(&g);
        scratch.recycle(g);
        grad_in
    }

    fn infer(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        let a = self.conv1.infer(x, scratch);
        let b = self.bn1.infer(&a, scratch);
        scratch.recycle(a);
        let mut c = b;
        self.act1.apply(&mut c);
        let d = self.conv2.infer(&c, scratch);
        scratch.recycle(c);
        let mut e = self.bn2.infer(&d, scratch);
        scratch.recycle(d);
        e.add_assign(x);
        self.act_out.apply(&mut e);
        e
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        self.bn1.visit_buffers(f);
        self.bn2.visit_buffers(f);
    }
}

/// The full Fig. 2 body as a typed layer tree (stem → blocks → head →
/// output conv).
struct QBody {
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    stem_act: LeakyReLU,
    blocks: Vec<PaperBlock>,
    head: Conv2d,
    head_bn: BatchNorm2d,
    head_act: LeakyReLU,
    out: Conv2d,
}

impl QBody {
    fn new(cfg: &QNetConfig) -> Self {
        let c = cfg.channels;
        let s = cfg.seed;
        QBody {
            stem: Conv2d::new_no_bias(4, c, 3, s),
            stem_bn: BatchNorm2d::new(c),
            stem_act: LeakyReLU::default(),
            blocks: (0..cfg.blocks)
                .map(|b| PaperBlock::new(c, s + 100 + 2 * b as u64))
                .collect(),
            head: Conv2d::new_no_bias(c, c, 1, s + 7000),
            head_bn: BatchNorm2d::new(c),
            head_act: LeakyReLU::default(),
            out: Conv2d::new(c, 4, 1, s + 7001),
        }
    }
}

impl Layer for QBody {
    fn forward_with(&mut self, x: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let a = self.stem.forward_with(x, train, scratch);
        let b = self.stem_bn.forward_with(&a, train, scratch);
        scratch.recycle(a);
        let mut cur = self.stem_act.forward_with(&b, train, scratch);
        scratch.recycle(b);
        for block in &mut self.blocks {
            let next = block.forward_with(&cur, train, scratch);
            scratch.recycle(cur);
            cur = next;
        }
        let h = self.head.forward_with(&cur, train, scratch);
        scratch.recycle(cur);
        let hb = self.head_bn.forward_with(&h, train, scratch);
        scratch.recycle(h);
        let ha = self.head_act.forward_with(&hb, train, scratch);
        scratch.recycle(hb);
        let out = self.out.forward_with(&ha, train, scratch);
        scratch.recycle(ha);
        out
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        let ha = self.out.backward_with(grad_out, scratch);
        let hb = self.head_act.backward_with(&ha, scratch);
        scratch.recycle(ha);
        let h = self.head_bn.backward_with(&hb, scratch);
        scratch.recycle(hb);
        let mut cur = self.head.backward_with(&h, scratch);
        scratch.recycle(h);
        for block in self.blocks.iter_mut().rev() {
            let next = block.backward_with(&cur, scratch);
            scratch.recycle(cur);
            cur = next;
        }
        let b = self.stem_act.backward_with(&cur, scratch);
        scratch.recycle(cur);
        let a = self.stem_bn.backward_with(&b, scratch);
        scratch.recycle(b);
        let grad_in = self.stem.backward_with(&a, scratch);
        scratch.recycle(a);
        grad_in
    }

    fn infer(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        let a = self.stem.infer(x, scratch);
        let mut cur = self.stem_bn.infer(&a, scratch);
        scratch.recycle(a);
        self.stem_act.apply(&mut cur);
        for block in &self.blocks {
            let next = block.infer(&cur, scratch);
            scratch.recycle(cur);
            cur = next;
        }
        let h = self.head.infer(&cur, scratch);
        scratch.recycle(cur);
        let mut hb = self.head_bn.infer(&h, scratch);
        scratch.recycle(h);
        self.head_act.apply(&mut hb);
        let out = self.out.infer(&hb, scratch);
        scratch.recycle(hb);
        out
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.visit_params(f);
        self.stem_bn.visit_params(f);
        for block in &mut self.blocks {
            block.visit_params(f);
        }
        self.head.visit_params(f);
        self.head_bn.visit_params(f);
        self.out.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        self.stem_bn.visit_buffers(f);
        for block in &mut self.blocks {
            block.visit_buffers(f);
        }
        self.head_bn.visit_buffers(f);
    }
}

/// Packs flat state features into the NCHW input tensor, using `scratch`
/// for the backing storage.
fn pack_states(n: usize, states: &[&[f32]], scratch: &mut Scratch) -> Tensor {
    let feat = 4 * n * n;
    let mut flat = scratch.take(states.len() * feat);
    for (s, chunk) in states.iter().zip(flat.chunks_mut(feat)) {
        assert_eq!(s.len(), feat, "state feature length mismatch");
        chunk.copy_from_slice(s);
    }
    Tensor::from_vec([states.len(), 4, n, n], flat)
}

/// Decodes the 4-channel network output into per-action Q-value rows.
///
/// Output channels: 0=Q_area(add), 1=Q_area(del), 2=Q_delay(add),
/// 3=Q_delay(del); flat action `kind·N² + pos`.
fn extract_q(n: usize, batch: usize, y: &Tensor) -> Vec<Vec<[f32; 2]>> {
    let nn_plane = n * n;
    (0..batch)
        .map(|b| {
            let base = b * 4 * nn_plane;
            let data = y.data();
            (0..2 * nn_plane)
                .map(|a| {
                    let (kind, pos) = (a / nn_plane, a % nn_plane);
                    [
                        data[base + kind * nn_plane + pos],
                        data[base + (2 + kind) * nn_plane + pos],
                    ]
                })
                .collect()
        })
        .collect()
}

/// The PrefixRL Q-network: implements [`rl::QNetwork`] over the flat
/// `2·N²` add/delete action space.
pub struct PrefixQNet {
    net: QBody,
    opt: Adam,
    n: usize,
    scratch: Scratch,
}

impl PrefixQNet {
    /// Builds the Fig. 2 architecture.
    pub fn new(cfg: &QNetConfig) -> Self {
        PrefixQNet {
            net: QBody::new(cfg),
            opt: Adam::new(cfg.lr),
            n: cfg.n as usize,
            scratch: Scratch::new(),
        }
    }

    /// The grid width `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Builds the fused, immutable inference snapshot of the current
    /// parameters: every batch-norm is folded into its preceding
    /// convolution (running-statistics semantics, matching evaluation-mode
    /// forwards within float rounding), backward caching disappears
    /// entirely, and the result is `Send + Sync` — async actors share one
    /// snapshot behind an `Arc` instead of copying weights.
    pub fn frozen(&self) -> FrozenQNet {
        FrozenQNet {
            stem: self.net.stem.fused(&self.net.stem_bn),
            blocks: self
                .net
                .blocks
                .iter()
                .map(|b| (b.conv1.fused(&b.bn1), b.conv2.fused(&b.bn2)))
                .collect(),
            head: self.net.head.fused(&self.net.head_bn),
            out: self.net.out.clone(),
            act: LeakyReLU::default(),
            n: self.n,
        }
    }

    /// Snapshots the Adam optimizer state (moments + step counter) —
    /// required alongside [`rl::QNetwork::state`] for bit-identical
    /// checkpoint resume.
    pub fn opt_state(&self) -> nn::AdamState {
        self.opt.state()
    }

    /// Restores optimizer state captured by [`PrefixQNet::opt_state`].
    ///
    /// Validates the moment tensors against this network's parameter
    /// shapes before handing them to the optimizer — a freshly built
    /// [`Adam`](nn::Adam) has no moments of its own to check against, so
    /// without this a truncated checkpoint would resume silently wrong (or
    /// panic mid-training) instead of failing here.
    ///
    /// # Errors
    ///
    /// Fails on architecture mismatch. An empty snapshot (optimizer that
    /// never stepped) is accepted.
    pub fn load_opt_state(&mut self, state: &nn::AdamState) -> Result<(), String> {
        if !state.m.is_empty() {
            let mut shapes = Vec::new();
            self.net.visit_params(&mut |p| shapes.push(p.data.len()));
            for (name, moments) in [("first", &state.m), ("second", &state.v)] {
                if moments.len() != shapes.len() {
                    return Err(format!(
                        "Adam state has {} {name}-moment tensors, network has {} parameters",
                        moments.len(),
                        shapes.len()
                    ));
                }
                for (i, (m, expected)) in moments.iter().zip(&shapes).enumerate() {
                    if m.len() != *expected {
                        return Err(format!(
                            "Adam {name} moment {i}: expected {expected} values, got {}",
                            m.len()
                        ));
                    }
                }
            }
        }
        self.opt.load_state(state)
    }

    /// Serializes parameters to bytes (checkpointing).
    pub fn to_bytes(&mut self) -> Vec<u8> {
        nn::serialize::to_bytes(&mut self.net)
    }

    /// Restores parameters from bytes.
    ///
    /// # Errors
    ///
    /// Fails on architecture mismatch or truncated data.
    pub fn from_bytes(&mut self, bytes: &[u8]) -> Result<(), String> {
        nn::serialize::from_bytes(&mut self.net, bytes)
    }
}

impl QInfer for PrefixQNet {
    fn num_actions(&self) -> usize {
        2 * self.n * self.n
    }

    fn infer(&self, states: &[&[f32]], scratch: &mut Scratch) -> Vec<Vec<[f32; 2]>> {
        let x = pack_states(self.n, states, scratch);
        let y = self.net.infer(&x, scratch);
        let out = extract_q(self.n, states.len(), &y);
        scratch.recycle(x);
        scratch.recycle(y);
        out
    }
}

impl QNetwork for PrefixQNet {
    fn forward(&mut self, states: &[&[f32]], train: bool) -> Vec<Vec<[f32; 2]>> {
        let x = pack_states(self.n, states, &mut self.scratch);
        // Evaluation-mode forwards take the immutable inference path —
        // identical arithmetic, but no backward caches are written (or
        // retained) anywhere in the tree.
        let y = if train {
            self.net.forward_with(&x, true, &mut self.scratch)
        } else {
            self.net.infer(&x, &mut self.scratch)
        };
        let out = extract_q(self.n, states.len(), &y);
        self.scratch.recycle(x);
        self.scratch.recycle(y);
        out
    }

    fn apply_gradient(&mut self, grad: &[Vec<[f32; 2]>]) {
        let nn_plane = self.n * self.n;
        let mut g = self.scratch.tensor([grad.len(), 4, self.n, self.n]);
        for (b, row) in grad.iter().enumerate() {
            assert_eq!(row.len(), 2 * nn_plane, "gradient action count mismatch");
            let base = b * 4 * nn_plane;
            for (a, go) in row.iter().enumerate() {
                let (kind, pos) = (a / nn_plane, a % nn_plane);
                g.data_mut()[base + kind * nn_plane + pos] = go[0];
                g.data_mut()[base + (2 + kind) * nn_plane + pos] = go[1];
            }
        }
        self.net.zero_grad();
        let grad_in = self.net.backward_with(&g, &mut self.scratch);
        self.scratch.recycle(grad_in);
        self.scratch.recycle(g);
        self.opt.step(&mut self.net);
    }

    fn state(&mut self) -> Vec<Vec<f32>> {
        nn::serialize::state(&mut self.net)
    }

    fn load_state(&mut self, state: &[Vec<f32>]) -> Result<(), String> {
        nn::serialize::load_state(&mut self.net, state)
    }
}

/// The fused, immutable inference snapshot of a [`PrefixQNet`].
///
/// Holds only fused convolutions (batch-norms folded in, evaluation
/// semantics) and implements [`rl::QInfer`] through `&self`: no caches, no
/// mutation, `Send + Sync`. One snapshot behind an `Arc` serves every
/// async actor; refreshing the policy is a pointer swap, not a weight
/// copy.
pub struct FrozenQNet {
    stem: Conv2d,
    blocks: Vec<(Conv2d, Conv2d)>,
    head: Conv2d,
    out: Conv2d,
    act: LeakyReLU,
    n: usize,
}

impl QInfer for FrozenQNet {
    fn num_actions(&self) -> usize {
        2 * self.n * self.n
    }

    fn infer(&self, states: &[&[f32]], scratch: &mut Scratch) -> Vec<Vec<[f32; 2]>> {
        let x = pack_states(self.n, states, scratch);
        let mut cur = self.stem.infer(&x, scratch);
        scratch.recycle(x);
        self.act.apply(&mut cur);
        for (c1, c2) in &self.blocks {
            let mut a = c1.infer(&cur, scratch);
            self.act.apply(&mut a);
            let mut b = c2.infer(&a, scratch);
            scratch.recycle(a);
            b.add_assign(&cur);
            self.act.apply(&mut b);
            scratch.recycle(cur);
            cur = b;
        }
        let mut h = self.head.infer(&cur, scratch);
        scratch.recycle(cur);
        self.act.apply(&mut h);
        let y = self.out.infer(&h, scratch);
        scratch.recycle(h);
        let out = extract_q(self.n, states.len(), &y);
        scratch.recycle(y);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{EnvConfig, PrefixEnv};
    use crate::task::{Adder, TaskEvaluator};
    use std::sync::Arc;

    #[test]
    fn output_layout_matches_action_space() {
        let mut q = PrefixQNet::new(&QNetConfig::tiny(8));
        assert_eq!(q.num_actions(), 128);
        let env = PrefixEnv::new(
            EnvConfig::analytical(8),
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
        let f = env.features();
        let out = q.forward(&[&f], false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 128);
        assert!(out[0].iter().all(|q| q[0].is_finite() && q[1].is_finite()));
    }

    #[test]
    fn batch_forward_matches_single() {
        let mut q = PrefixQNet::new(&QNetConfig::tiny(8));
        let env = PrefixEnv::new(
            EnvConfig::analytical(8),
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
        let f = env.features();
        // Eval mode uses running statistics, so batching must not change
        // per-sample outputs.
        let single = q.forward(&[&f], false);
        let double = q.forward(&[&f, &f], false);
        for a in 0..q.num_actions() {
            assert!((single[0][a][0] - double[1][a][0]).abs() < 1e-5);
            assert!((single[0][a][1] - double[1][a][1]).abs() < 1e-5);
        }
    }

    #[test]
    fn infer_is_bit_identical_to_eval_forward() {
        let mut q = PrefixQNet::new(&QNetConfig::tiny(8));
        let env = PrefixEnv::new(
            EnvConfig::analytical(8),
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
        let f = env.features();
        let fwd = q.forward(&[&f], false);
        let mut scratch = Scratch::new();
        let inf = q.infer(&[&f], &mut scratch);
        assert_eq!(fwd, inf, "QInfer::infer diverged from forward(…, false)");
    }

    #[test]
    fn frozen_snapshot_matches_eval_forward() {
        let mut q = PrefixQNet::new(&QNetConfig::tiny(8));
        let env = PrefixEnv::new(
            EnvConfig::analytical(8),
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
        let f = env.features();
        // Take some training steps so batch-norm statistics are nontrivial
        // before fusing.
        for _ in 0..5 {
            let _ = q.forward(&[&f], true);
            let mut grad = vec![vec![[0.0f32; 2]; q.num_actions()]; 1];
            grad[0][7][1] = 0.5;
            q.apply_gradient(&grad);
        }
        let frozen = q.frozen();
        assert_eq!(frozen.num_actions(), q.num_actions());
        let reference = q.forward(&[&f], false);
        let mut scratch = Scratch::new();
        let fused = frozen.infer(&[&f], &mut scratch);
        for (r, u) in reference[0].iter().zip(&fused[0]) {
            for obj in 0..2 {
                assert!(
                    (r[obj] - u[obj]).abs() <= 1e-5 + 1e-5 * r[obj].abs(),
                    "fused {} vs eval {}",
                    u[obj],
                    r[obj]
                );
            }
        }
        // The snapshot is shareable: concurrent inference from plain refs.
        let frozen = Arc::new(frozen);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let frozen = Arc::clone(&frozen);
                let f = f.clone();
                s.spawn(move || {
                    let mut scratch = Scratch::new();
                    let out = frozen.infer(&[&f], &mut scratch);
                    assert_eq!(out[0].len(), frozen.num_actions());
                });
            }
        });
    }

    /// The inference-broker contract (see `parallel.rs`): the fused net is
    /// per-sample — convolutions, folded batch-norms and LeakyReLU never
    /// mix rows — so a state's Q-values are *bit-identical* whatever batch
    /// they ride in. This is what lets the broker concatenate many actors'
    /// states into one forward without perturbing any actor's trajectory.
    #[test]
    fn frozen_inference_is_independent_of_batch_composition() {
        let mut q = PrefixQNet::new(&QNetConfig::tiny(8));
        let mut env = PrefixEnv::new(
            EnvConfig::analytical(8),
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
        // Distinct states along a trajectory, with nontrivial BN statistics
        // folded into the snapshot.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut states: Vec<Vec<f32>> = Vec::new();
        env.reset(&mut rng);
        for _ in 0..6 {
            states.push(env.features());
            let legal = env.action_mask();
            let a = (0..legal.len()).find(|&a| legal[a]).unwrap();
            let _ = env.step_flat(a);
            let _ = q.forward(&[&states[0]], true);
            let mut grad = vec![vec![[0.0f32; 2]; q.num_actions()]; 1];
            grad[0][11][0] = 0.25;
            q.apply_gradient(&grad);
        }
        let frozen = q.frozen();
        let mut scratch = Scratch::new();
        let refs: Vec<&[f32]> = states.iter().map(Vec::as_slice).collect();
        let combined = frozen.infer(&refs, &mut scratch);
        // Batch of one, prefixes, suffixes, reversed order: every
        // composition must reproduce the combined rows exactly.
        for (i, s) in refs.iter().enumerate() {
            assert_eq!(
                frozen.infer(&[s], &mut scratch)[0],
                combined[i],
                "singleton {i}"
            );
        }
        for split in 1..refs.len() {
            let lo = frozen.infer(&refs[..split], &mut scratch);
            let hi = frozen.infer(&refs[split..], &mut scratch);
            assert_eq!(lo, combined[..split], "prefix split {split}");
            assert_eq!(hi, combined[split..], "suffix split {split}");
        }
        let rev: Vec<&[f32]> = refs.iter().rev().copied().collect();
        let reversed = frozen.infer(&rev, &mut scratch);
        for (i, row) in reversed.iter().enumerate() {
            assert_eq!(*row, combined[refs.len() - 1 - i], "reversed {i}");
        }
    }

    #[test]
    fn gradient_step_moves_selected_q() {
        let mut q = PrefixQNet::new(&QNetConfig::tiny(8));
        let env = PrefixEnv::new(
            EnvConfig::analytical(8),
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
        let f = env.features();
        let action = 40usize;
        let before = q.forward(&[&f], false)[0][action];
        // Push Q_area(action) down for a few steps.
        for _ in 0..10 {
            let _ = q.forward(&[&f], true);
            let mut grad = vec![vec![[0.0f32; 2]; q.num_actions()]; 1];
            grad[0][action][0] = 1.0; // dL/dQ > 0 → Q decreases
            q.apply_gradient(&grad);
        }
        let after = q.forward(&[&f], false)[0][action];
        assert!(after[0] < before[0], "{} !< {}", after[0], before[0]);
    }

    #[test]
    fn state_roundtrip_between_instances() {
        let cfg = QNetConfig::tiny(8);
        let mut a = PrefixQNet::new(&cfg);
        let mut b = PrefixQNet::new(&QNetConfig { seed: 42, ..cfg });
        let env = PrefixEnv::new(
            EnvConfig::analytical(8),
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
        let f = env.features();
        let s = a.state();
        b.load_state(&s).unwrap();
        let qa = a.forward(&[&f], false);
        let qb = b.forward(&[&f], false);
        assert_eq!(qa[0][5], qb[0][5]);
    }

    #[test]
    fn truncated_adam_state_rejected() {
        let cfg = QNetConfig::tiny(8);
        let mut q = PrefixQNet::new(&cfg);
        // Take one gradient step so the optimizer has real moments.
        let env = PrefixEnv::new(
            EnvConfig::analytical(8),
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
        let f = env.features();
        let _ = q.forward(&[&f], true);
        let mut grad = vec![vec![[0.0f32; 2]; q.num_actions()]; 1];
        grad[0][3][0] = 1.0;
        q.apply_gradient(&grad);
        let good = q.opt_state();
        let mut fresh = PrefixQNet::new(&cfg);
        fresh.load_opt_state(&good).unwrap();
        // A fresh optimizer has no moments to validate against, so the
        // network-level check must catch truncation/corruption.
        let mut missing_tensor = good.clone();
        missing_tensor.m.pop();
        missing_tensor.v.pop();
        assert!(PrefixQNet::new(&cfg)
            .load_opt_state(&missing_tensor)
            .is_err());
        let mut short_tensor = good.clone();
        short_tensor.v[0].pop();
        assert!(PrefixQNet::new(&cfg).load_opt_state(&short_tensor).is_err());
    }

    #[test]
    fn checkpoint_bytes_roundtrip() {
        let cfg = QNetConfig::tiny(8);
        let mut a = PrefixQNet::new(&cfg);
        let bytes = a.to_bytes();
        let mut b = PrefixQNet::new(&QNetConfig { seed: 9, ..cfg });
        b.from_bytes(&bytes).unwrap();
        let env = PrefixEnv::new(
            EnvConfig::analytical(8),
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
        let f = env.features();
        assert_eq!(a.forward(&[&f], false)[0][0], b.forward(&[&f], false)[0][0]);
    }
}
