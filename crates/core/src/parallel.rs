//! The asynchronous distributed training system (paper Section IV-D).
//!
//! The paper's key systems observation is that DQN is off-policy, so
//! experience generation (environment + synthesis) decouples from gradient
//! computation: 192 synthesis workers fed one learner. This module
//! reproduces that architecture at thread scale:
//!
//! - [`evaluate_batch`] — batch evaluation on a worker pool, provided by
//!   [`crate::evalsvc`] (re-exported here for the figure harnesses and the
//!   scaling benchmark);
//! - [`train_async`] — actor threads run `envs_per_actor` environments in
//!   lockstep with periodically refreshed policy snapshots, select actions
//!   through the shared [`ScalarizedPolicy`] with **one batched Q-network
//!   forward per decision round** (not batch-of-1), and stream transitions
//!   over a channel to a learner thread that trains and publishes
//!   parameters.

use crate::agent::{AgentConfig, TrainResult};
use crate::env::PrefixEnv;
use crate::evaluator::{Evaluator, ObjectivePoint};
use crate::qnet::{PrefixQNet, QNetConfig};
use crossbeam::channel;
use parking_lot::{Mutex, RwLock};
use prefix_graph::PrefixGraph;
use rand::prelude::*;
use rl::{DoubleDqn, EpsilonSchedule, QNetwork, ReplayBuffer, ScalarizedPolicy, Transition};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub use crate::evalsvc::evaluate_batch;

/// Shared policy snapshot published by the learner.
struct PolicyBoard {
    version: AtomicU64,
    params: RwLock<Vec<Vec<f32>>>,
}

/// The design pool shared by all actors: canonical key → (graph, metrics).
type DesignPool = Mutex<HashMap<Vec<u64>, (PrefixGraph, ObjectivePoint)>>;

/// Trains with `num_actors` parallel experience generators and one learner.
///
/// Semantics match [`crate::agent::train`] (same config fields), but
/// experience arrives asynchronously, so per-step pairing of acting and
/// learning is not bit-identical to the serial path. Each actor steps
/// `cfg.envs_per_actor` environments per decision round; total environment
/// steps across all actors equal `cfg.total_steps`.
pub fn train_async(
    cfg: &AgentConfig,
    evaluator: Arc<dyn Evaluator>,
    num_actors: usize,
) -> TrainResult {
    assert!(num_actors > 0, "need at least one actor");
    let mut online = PrefixQNet::new(&cfg.qnet);
    let board = Arc::new(PolicyBoard {
        version: AtomicU64::new(1),
        params: RwLock::new(online.state()),
    });
    let (tx, rx) = channel::bounded::<Transition>(4096);
    let steps_taken = Arc::new(AtomicU64::new(0));
    let designs: Arc<DesignPool> = Arc::new(Mutex::new(HashMap::new()));
    let schedule = EpsilonSchedule::linear(cfg.eps_start, cfg.eps_end, cfg.eps_decay_steps);

    let losses = std::thread::scope(|s| {
        // Actors.
        for actor in 0..num_actors {
            let tx = tx.clone();
            let board = Arc::clone(&board);
            let steps_taken = Arc::clone(&steps_taken);
            let designs = Arc::clone(&designs);
            let evaluator = Arc::clone(&evaluator);
            let cfg = cfg.clone();
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ ((actor as u64 + 1) * 0x9e37));
                let mut net = PrefixQNet::new(&cfg.qnet);
                let mut my_version = 0u64;
                let policy = ScalarizedPolicy::new(cfg.dqn.weight);
                let num_envs = cfg.envs_per_actor.max(1);
                let mut envs: Vec<PrefixEnv> = (0..num_envs)
                    .map(|_| PrefixEnv::new(cfg.env.clone(), Arc::clone(&evaluator)))
                    .collect();
                for env in &mut envs {
                    env.reset(&mut rng);
                    record_design(&designs, env);
                }
                'acting: loop {
                    let claimed = steps_taken.fetch_add(num_envs as u64, Ordering::Relaxed);
                    if claimed >= cfg.total_steps {
                        break;
                    }
                    let round = (num_envs as u64).min(cfg.total_steps - claimed) as usize;
                    // Refresh the policy snapshot when the learner published.
                    let published = board.version.load(Ordering::Acquire);
                    if published != my_version {
                        let params = board.params.read().clone();
                        net.load_state(&params).expect("same architecture");
                        my_version = published;
                    }
                    let eps = schedule.value(claimed);
                    // One batched forward for the whole environment round.
                    let mut states: Vec<Vec<f32>> =
                        envs[..round].iter().map(PrefixEnv::features).collect();
                    let masks: Vec<Vec<bool>> =
                        envs[..round].iter().map(PrefixEnv::action_mask).collect();
                    let state_refs: Vec<&[f32]> = states.iter().map(Vec::as_slice).collect();
                    let mask_refs: Vec<&[bool]> = masks.iter().map(Vec::as_slice).collect();
                    let actions =
                        policy.select_actions(&mut net, &state_refs, &mask_refs, eps, &mut rng);
                    for (i, action) in actions.into_iter().enumerate() {
                        let action = action.expect("legal action always exists");
                        let env = &mut envs[i];
                        let outcome = env.step_flat(action);
                        record_design(&designs, env);
                        let t = Transition {
                            state: std::mem::take(&mut states[i]),
                            action,
                            reward: outcome.reward,
                            next_state: env.features(),
                            next_mask: env.action_mask(),
                            done: false,
                        };
                        if tx.send(t).is_err() {
                            break 'acting; // learner gone
                        }
                        if outcome.truncated {
                            env.reset(&mut rng);
                            record_design(&designs, env);
                        }
                    }
                }
                drop(tx);
            });
        }
        drop(tx);

        // Learner (runs on this thread).
        let target = PrefixQNet::new(&QNetConfig {
            seed: cfg.qnet.seed ^ 0x5eed,
            ..cfg.qnet.clone()
        });
        let mut dqn = DoubleDqn::new(online, target, cfg.dqn.clone());
        let mut replay = ReplayBuffer::new(cfg.replay_capacity);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xdead);
        let mut losses = Vec::new();
        let mut since_publish = 0u64;
        while let Ok(t) = rx.recv() {
            replay.push(t);
            // Drain whatever else is queued to keep actors unblocked.
            while let Ok(t) = rx.try_recv() {
                replay.push(t);
            }
            if let Some(loss) = dqn.train_step(&replay, &mut rng) {
                losses.push(loss);
                since_publish += 1;
                if since_publish >= cfg.dqn.target_sync_every {
                    since_publish = 0;
                    *board.params.write() = dqn.online_mut().state();
                    board.version.fetch_add(1, Ordering::Release);
                }
            }
        }
        losses
    });

    let designs = Arc::try_unwrap(designs)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone());
    TrainResult {
        designs: designs.into_values().collect(),
        losses,
        episode_returns: Vec::new(),
        steps: cfg.total_steps,
    }
}

fn record_design(designs: &DesignPool, env: &PrefixEnv) {
    designs
        .lock()
        .entry(env.graph().canonical_key())
        .or_insert_with(|| (env.graph().clone(), env.metrics()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedEvaluator;
    use crate::evaluator::AnalyticalEvaluator;

    #[test]
    fn async_training_completes_and_harvests() {
        let mut cfg = AgentConfig::tiny(8, 0.5);
        cfg.total_steps = 400;
        let eval = Arc::new(CachedEvaluator::new(AnalyticalEvaluator));
        let result = train_async(&cfg, eval.clone(), 3);
        assert!(
            result.designs.len() > 20,
            "{} designs",
            result.designs.len()
        );
        assert!(!result.losses.is_empty(), "learner never trained");
        for (g, _) in &result.designs {
            g.verify_legal().unwrap();
        }
        // Actors share the cache: repeated start states must hit.
        assert!(eval.hits() > 0);
    }

    #[test]
    fn async_and_serial_explore_comparable_design_counts() {
        let mut cfg = AgentConfig::tiny(8, 0.5);
        cfg.total_steps = 300;
        let serial = crate::agent::train(&cfg, Arc::new(AnalyticalEvaluator));
        let parallel = train_async(&cfg, Arc::new(AnalyticalEvaluator), 2);
        // Same step budget → same order of magnitude of distinct designs.
        let (a, b) = (serial.designs.len() as f64, parallel.designs.len() as f64);
        assert!(a / b < 4.0 && b / a < 4.0, "serial {a} vs async {b}");
    }

    #[test]
    fn single_env_actors_still_work() {
        let mut cfg = AgentConfig::tiny(8, 0.5);
        cfg.total_steps = 200;
        cfg.envs_per_actor = 1;
        let result = train_async(&cfg, Arc::new(AnalyticalEvaluator), 2);
        assert!(
            result.designs.len() > 10,
            "{} designs",
            result.designs.len()
        );
    }
}
