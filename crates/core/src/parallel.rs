//! The asynchronous distributed training system (paper Section IV-D).
//!
//! The paper's key systems observation is that DQN is off-policy, so
//! experience generation (environment + synthesis) decouples from gradient
//! computation: 192 synthesis workers fed one learner. This module
//! reproduces that architecture at thread scale behind the
//! [`crate::experiment::Runner`] interface:
//!
//! - [`evaluate_batch`] — batch evaluation on a worker pool, provided by
//!   [`crate::evalsvc`] (re-exported here for the figure harnesses and the
//!   scaling benchmark);
//! - [`AsyncRunner`] — actor threads run `envs_per_actor` environments in
//!   lockstep, select actions through the shared [`ScalarizedPolicy`] with
//!   **one batched Q-network forward per decision round** (not batch-of-1),
//!   and stream transitions over a channel to a learner thread that trains
//!   and publishes its policy. Publication is a **snapshot swap**: on each
//!   target-sync the learner freezes the online network into a fused
//!   [`FrozenQNet`] (batch-norms folded into their convolutions) behind an
//!   `Arc`; actors notice the version bump and clone the `Arc` — a pointer
//!   copy. Per decision, actors perform **zero weight copies and take no
//!   locks**: acting is `&FrozenQNet` through the immutable
//!   [`rl::QInfer`] path. Events stream to the run's observer from both
//!   sides.
//!
//! # The cross-actor inference broker
//!
//! With [`AsyncRunner::batched_inference`] on (the default), actors do not
//! run their greedy forwards locally. Each round an actor sends its
//! greedy-state batch to a dedicated **broker thread** and blocks on a
//! private reply channel; the broker drains every request currently
//! queued, concatenates the states, runs **one fused forward over the
//! combined batch**, splits the Q-rows back per request and replies. Many
//! small per-actor batches become one large GEMM per service cycle — the
//! thread-scale analogue of the paper's batched inference server in front
//! of its 192 synthesis workers.
//!
//! Centralizing inference also lets the broker **memoize**: Q-values are a
//! pure function of (snapshot, state), so each service cycle runs its
//! fused forward only over the *unique states not already answered under
//! the current snapshot* and serves everything else from a bit-exact memo
//! table (cleared on every publish). Actors frequently pose identical
//! states — shared reset states early in training, revisited prefixes
//! under the greedy policy — and only a central service can deduplicate
//! them across actors; per-actor inference recomputes every one.
//!
//! Correctness rests on the fused net being **per-sample**: convolutions,
//! folded batch-norms and LeakyReLU never mix rows, so a state's Q-values
//! are bit-identical whatever batch they ride in (pinned by a test in
//! `crate::qnet`). Exploration coins are drawn on the actor *before* the
//! request is sent, so an actor consumes its RNG identically in broker and
//! local mode. Shutdown is by disconnection in both directions: actors
//! exiting drop their request senders (broker's `recv` errs → broker
//! exits); a broker panic drops the request receiver and every in-flight
//! reply sender, actors see the error as a cancelled decision and break,
//! and the scope re-raises the panic.
//!
//! Because experience arrives asynchronously, the async path is not
//! bit-identical run to run, and it does not support checkpoint/resume —
//! the deterministic [`crate::experiment::SerialRunner`] does.

use crate::agent::{AgentConfig, TrainResult};
use crate::env::PrefixEnv;
use crate::evaluator::{Evaluator, ObjectivePoint};
use crate::experiment::{
    CancelToken, Event, NullObserver, RunContext, RunObserver, RunOutcome, RunRecord, Runner,
};
use crate::qnet::{FrozenQNet, PrefixQNet, QNetConfig};
use crate::task::{self, CircuitTask};
use crossbeam::channel;
use parking_lot::{Mutex, RwLock};
use prefix_graph::PrefixGraph;
use rand::prelude::*;
use rl::{DoubleDqn, EpsilonSchedule, QInfer, ReplayBuffer, ScalarizedPolicy, Transition};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub use crate::evalsvc::evaluate_batch;

/// The frozen policy snapshot published by the learner.
///
/// Actors poll `version` (one relaxed atomic load per decision round) and
/// only touch the lock when it bumps — and even then they clone an `Arc`,
/// never the weights. The decision path itself is lock-free: batched
/// inference through `&FrozenQNet`.
struct PolicyBoard {
    version: AtomicU64,
    snapshot: RwLock<Arc<FrozenQNet>>,
}

/// The design pool shared by all actors: canonical key → (graph, metrics).
type DesignPool = Mutex<HashMap<Vec<u64>, (PrefixGraph, ObjectivePoint)>>;

/// One actor's greedy-state batch awaiting Q-values, plus the private
/// reply channel the actor blocks on. The broker answers each request
/// with exactly `states.len()` Q-rows.
struct InferRequest {
    states: Vec<Vec<f32>>,
    reply: channel::Sender<Vec<Vec<[f32; 2]>>>,
}

/// Entry cap for the broker's per-snapshot memo table — a backstop for
/// pathological state churn between publishes (publishes clear the table
/// long before this in practice). Keys are full feature vectors, so the
/// cap is what bounds worst-case broker memory: [`BrokerMemo::resolve`]
/// never lets the table exceed it, even when a single cycle's fresh set
/// is larger than the whole cap.
const BROKER_MEMO_CAP: usize = 1 << 12;

/// The broker's per-snapshot Q-row memo: state bit-pattern → Q-rows.
/// Cleared on every snapshot publish; holds at most `cap` entries.
struct BrokerMemo {
    cap: usize,
    rows: HashMap<Vec<u32>, Vec<[f32; 2]>>,
}

impl BrokerMemo {
    fn new(cap: usize) -> Self {
        BrokerMemo {
            cap,
            rows: HashMap::new(),
        }
    }

    /// Drop every memoized row (the snapshot changed).
    fn clear(&mut self) {
        self.rows.clear();
    }

    /// Resolve one decision cycle: return one Q-row per key, in key
    /// order, running `infer` at most once over the deduplicated states
    /// not already memoized. `keys[i]` must be the bit pattern of
    /// `states[i]`.
    ///
    /// Replies are assembled from a cycle-local map into which memo hits
    /// are copied *before* any eviction, so the cap backstop below can
    /// never drop a row the current cycle still needs.
    fn resolve(
        &mut self,
        keys: &[Vec<u32>],
        states: &[&[f32]],
        infer: impl FnOnce(&[&[f32]]) -> Vec<Vec<[f32; 2]>>,
    ) -> Vec<Vec<[f32; 2]>> {
        debug_assert_eq!(keys.len(), states.len());
        let mut cycle: HashMap<&Vec<u32>, Vec<[f32; 2]>> = HashMap::new();
        let mut fresh: Vec<(&Vec<u32>, &[f32])> = Vec::new();
        let mut seen: HashSet<&Vec<u32>> = HashSet::new();
        for (key, &state) in keys.iter().zip(states) {
            if !seen.insert(key) {
                continue;
            }
            match self.rows.get(key) {
                Some(hit) => {
                    cycle.insert(key, hit.clone());
                }
                None => fresh.push((key, state)),
            }
        }
        if !fresh.is_empty() {
            let batch: Vec<&[f32]> = fresh.iter().map(|&(_, s)| s).collect();
            let q = infer(&batch);
            debug_assert_eq!(q.len(), fresh.len());
            // Cap backstop: evict earlier cycles' rows, then memoize the
            // fresh rows only while room remains, so the table never
            // exceeds `cap` entries. The reply scatter reads `cycle`,
            // never the memo, so eviction cannot lose a row mid-cycle.
            if self.rows.len() + fresh.len() > self.cap {
                self.rows.clear();
            }
            for (&(key, _), row) in fresh.iter().zip(q) {
                if self.rows.len() < self.cap {
                    self.rows.insert(key.clone(), row.clone());
                }
                cycle.insert(key, row);
            }
        }
        keys.iter().map(|k| cycle[k].clone()).collect()
    }
}

/// The asynchronous actor/learner runner: `actors` parallel experience
/// generators feed one learner thread.
///
/// Semantics match the serial runner (same config fields), but experience
/// arrives asynchronously, so per-step pairing of acting and learning is
/// not bit-identical to the serial path and checkpoint/resume is not
/// supported. Each actor steps `envs_per_actor` environments per decision
/// round; total environment steps across all actors equal
/// `cfg.total_steps`.
pub struct AsyncRunner {
    /// Number of actor threads (≥ 1).
    pub actors: usize,
    /// Route greedy forwards through the cross-actor inference broker
    /// (one fused forward over all actors' pending states per service
    /// cycle — see the module docs) instead of running them per-actor.
    /// Defaults to `true`; trajectories are unaffected either way because
    /// the fused net is per-sample.
    pub batched_inference: bool,
}

impl AsyncRunner {
    /// An async runner with `actors` actor threads and the cross-actor
    /// inference broker enabled (the default configuration).
    pub fn new(actors: usize) -> Self {
        AsyncRunner {
            actors,
            batched_inference: true,
        }
    }

    /// Convenience: trains one agent to completion unobserved — the
    /// one-shot equivalent of the old `train_async` free function. Sweeps
    /// and observed runs should go through
    /// [`crate::experiment::Experiment`].
    ///
    /// # Panics
    ///
    /// Panics if the runner was built with zero actors.
    pub fn train(&self, cfg: &AgentConfig, evaluator: Arc<dyn Evaluator>) -> TrainResult {
        assert!(self.actors > 0, "need at least one actor");
        let task = task::by_name(&cfg.env.task)
            .unwrap_or_else(|| panic!("unknown task `{}`", cfg.env.task));
        let record = run_async(
            0,
            cfg,
            task,
            evaluator,
            self.actors,
            self.batched_inference,
            &mut NullObserver,
            &CancelToken::new(),
        );
        TrainResult {
            designs: record.designs,
            losses: record.losses,
            episode_returns: record.episode_returns,
            steps: record.steps,
        }
    }
}

impl Runner for AsyncRunner {
    fn run(&self, ctx: RunContext<'_>) -> Result<RunOutcome, String> {
        if self.actors == 0 {
            return Err("need at least one actor".to_string());
        }
        if ctx.resume.is_some() {
            return Err(
                "AsyncRunner does not support checkpoint resume; use the serial runner \
                 (actors = 1)"
                    .to_string(),
            );
        }
        if ctx.checkpoint_every.is_some() || ctx.halt_at.is_some() {
            return Err(
                "AsyncRunner does not support checkpointing or halt-at (asynchronous \
                 experience makes resume non-reproducible); use the serial runner \
                 (actors = 1)"
                    .to_string(),
            );
        }
        let record = run_async(
            ctx.run_id,
            ctx.cfg,
            ctx.task,
            ctx.evaluator,
            self.actors,
            self.batched_inference,
            ctx.observer,
            &ctx.cancel,
        );
        // A cancel that lands after the actors already exhausted the
        // budget changes nothing — the run is complete (mirrors the
        // serial runner's `!lp.is_done()` guard); otherwise a cancelled
        // run returns its partial record with `completed == false`: not
        // resumable (no checkpoint), but the designs are not lost.
        let completed = !ctx.cancel.is_cancelled() || record.steps >= ctx.cfg.total_steps;
        Ok(RunOutcome { record, completed })
    }
}

#[allow(clippy::too_many_arguments)]
fn run_async(
    run_id: usize,
    cfg: &AgentConfig,
    circuit_task: Arc<dyn CircuitTask>,
    evaluator: Arc<dyn Evaluator>,
    num_actors: usize,
    batched_inference: bool,
    observer: &mut dyn RunObserver,
    cancel: &CancelToken,
) -> RunRecord {
    let online = PrefixQNet::new(&cfg.qnet);
    let board = Arc::new(PolicyBoard {
        version: AtomicU64::new(1),
        snapshot: RwLock::new(Arc::new(online.frozen())),
    });
    let (tx, rx) = channel::bounded::<Transition>(4096);
    let steps_taken = Arc::new(AtomicU64::new(0));
    let designs: Arc<DesignPool> = Arc::new(Mutex::new(HashMap::new()));
    let schedule = EpsilonSchedule::linear(cfg.eps_start, cfg.eps_end, cfg.eps_decay_steps);
    let observer = Mutex::new(observer);
    let episode_returns: Mutex<Vec<f64>> = Mutex::new(Vec::new());

    let losses = std::thread::scope(|s| {
        // The inference broker: drains every queued request, runs one
        // fused forward over the concatenation, scatters the Q-rows back.
        // Capacity `num_actors` means a round of actors never blocks on
        // the request send (each actor has at most one request in flight).
        let broker_tx = if batched_inference {
            let (btx, brx) = channel::bounded::<InferRequest>(num_actors);
            let board = Arc::clone(&board);
            s.spawn(move || {
                let mut scratch = nn::Scratch::new();
                let mut my_version = board.version.load(Ordering::Acquire);
                let mut snapshot: Arc<FrozenQNet> = board.snapshot.read().clone();
                let mut pending: Vec<InferRequest> = Vec::new();
                // Q-rows already computed under the current snapshot,
                // keyed by the state's exact f32 bit pattern. A memo hit
                // returns precisely the bits a fresh forward would
                // (inference is deterministic and per-sample), so this
                // changes no actor's trajectory — it only skips forwards.
                let mut memo = BrokerMemo::new(BROKER_MEMO_CAP);
                // Blocking recv for the first request of a cycle, then a
                // non-blocking drain of whatever else is already queued.
                // No waiting for stragglers: the memo table makes batch
                // size a minor factor (a state computed this cycle is a
                // memo hit next cycle, whichever request it rides in), so
                // serving immediately minimizes decision latency and
                // context switches. Batch composition cannot change any
                // Q-value, so drain depth is a throughput knob only.
                // Exits when the last actor drops its sender.
                while let Ok(first) = brx.recv() {
                    pending.push(first);
                    while let Ok(more) = brx.try_recv() {
                        pending.push(more);
                    }
                    let published = board.version.load(Ordering::Acquire);
                    if published != my_version {
                        snapshot = board.snapshot.read().clone();
                        my_version = published;
                        memo.clear();
                    }
                    // One bit-exact key per pending state, request order.
                    let keys: Vec<Vec<u32>> = pending
                        .iter()
                        .flat_map(|r| r.states.iter())
                        .map(|s| s.iter().map(|v| v.to_bits()).collect())
                        .collect();
                    let states: Vec<&[f32]> = pending
                        .iter()
                        .flat_map(|r| r.states.iter().map(Vec::as_slice))
                        .collect();
                    // The fused forward covers only the unique states not
                    // already memoized under this snapshot.
                    let rows =
                        memo.resolve(&keys, &states, |batch| snapshot.infer(batch, &mut scratch));
                    let mut row_it = rows.into_iter();
                    for req in pending.drain(..) {
                        let reply: Vec<Vec<[f32; 2]>> =
                            row_it.by_ref().take(req.states.len()).collect();
                        // A send error means the requesting actor already
                        // exited (cancel landed mid-request) — drop the rows.
                        let _ = req.reply.send(reply);
                    }
                }
            });
            Some(btx)
        } else {
            None
        };

        // Actors.
        for actor in 0..num_actors {
            let tx = tx.clone();
            let broker_tx = broker_tx.clone();
            let board = Arc::clone(&board);
            let steps_taken = Arc::clone(&steps_taken);
            let designs = Arc::clone(&designs);
            let evaluator = Arc::clone(&evaluator);
            let circuit_task = Arc::clone(&circuit_task);
            let cfg = cfg.clone();
            let observer = &observer;
            let episode_returns = &episode_returns;
            let cancel = cancel.clone();
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ ((actor as u64 + 1) * 0x9e37));
                let mut scratch = nn::Scratch::new();
                // Broker mode: a private bounded(1) reply lane per actor.
                // The reply sender is cloned into each request so the
                // broker can answer; the receiver stays here.
                let broker = broker_tx.map(|btx| {
                    let (reply_tx, reply_rx) = channel::bounded::<Vec<Vec<[f32; 2]>>>(1);
                    (btx, reply_tx, reply_rx)
                });
                // The actor's policy net is a shared pointer to the
                // learner's latest frozen snapshot — never a copy. The
                // version must be read *before* the snapshot: a publish
                // landing between the two reads then makes the in-loop
                // check refresh immediately, instead of pinning a stale
                // snapshot for a whole sync interval.
                let mut my_version = board.version.load(Ordering::Acquire);
                let mut snapshot: Arc<FrozenQNet> = board.snapshot.read().clone();
                let policy = ScalarizedPolicy::new(cfg.dqn.weight);
                let num_envs = cfg.envs_per_actor.max(1);
                let mut envs: Vec<PrefixEnv> = (0..num_envs)
                    .map(|_| {
                        PrefixEnv::with_task(
                            cfg.env.clone(),
                            Arc::clone(&circuit_task),
                            Arc::clone(&evaluator),
                        )
                    })
                    .collect();
                let mut env_returns = vec![0.0f64; num_envs];
                for env in &mut envs {
                    env.reset(&mut rng);
                    record_design(run_id, &designs, env, observer, 0);
                }
                'acting: loop {
                    // Poll the token per decision round: pause blocks all
                    // actors here (the learner idles on its empty channel),
                    // cancel ends acting — the learner then drains what is
                    // queued and exits when the last sender drops.
                    if cancel.wait_while_paused() {
                        break 'acting;
                    }
                    let claimed = steps_taken.fetch_add(num_envs as u64, Ordering::Relaxed);
                    if claimed >= cfg.total_steps {
                        break;
                    }
                    let round = (num_envs as u64).min(cfg.total_steps - claimed) as usize;
                    // Swap in the newer snapshot when the learner
                    // published one (an Arc clone, not a weight copy).
                    let published = board.version.load(Ordering::Acquire);
                    if published != my_version {
                        snapshot = board.snapshot.read().clone();
                        my_version = published;
                    }
                    let eps = schedule.value(claimed);
                    // One batched forward for the whole environment round.
                    let mut states: Vec<Vec<f32>> =
                        envs[..round].iter().map(PrefixEnv::features).collect();
                    let masks: Vec<Vec<bool>> =
                        envs[..round].iter().map(PrefixEnv::action_mask).collect();
                    let state_refs: Vec<&[f32]> = states.iter().map(Vec::as_slice).collect();
                    let mask_refs: Vec<&[bool]> = masks.iter().map(Vec::as_slice).collect();
                    let actions = match &broker {
                        Some((btx, reply_tx, reply_rx)) => {
                            let picked = policy.select_actions_with(
                                &state_refs,
                                &mask_refs,
                                eps,
                                &mut rng,
                                |batch| {
                                    let req = InferRequest {
                                        states: batch.iter().map(|s| s.to_vec()).collect(),
                                        reply: reply_tx.clone(),
                                    };
                                    btx.send(req).ok()?;
                                    reply_rx.recv().ok()
                                },
                            );
                            match picked {
                                Some(actions) => actions,
                                // Broker gone mid-decision (it panicked and
                                // its unwind dropped our reply sender):
                                // abandon the round so the scope can
                                // re-raise the broker's panic.
                                None => break 'acting,
                            }
                        }
                        None => policy.select_actions(
                            &*snapshot,
                            &state_refs,
                            &mask_refs,
                            eps,
                            &mut rng,
                            &mut scratch,
                        ),
                    };
                    for (i, action) in actions.into_iter().enumerate() {
                        let action = action.expect("legal action always exists");
                        let env = &mut envs[i];
                        let step_index = claimed + i as u64;
                        let outcome = env.step_flat(action);
                        record_design(run_id, &designs, env, observer, step_index);
                        env_returns[i] += (cfg.dqn.weight[0] * outcome.reward[0]
                            + cfg.dqn.weight[1] * outcome.reward[1])
                            as f64;
                        observer.lock().on_event(
                            run_id,
                            &Event::Step {
                                step: step_index,
                                epsilon: eps,
                                reward: outcome.reward,
                            },
                        );
                        let t = Transition {
                            state: std::mem::take(&mut states[i]),
                            action,
                            reward: outcome.reward,
                            next_state: env.features(),
                            next_mask: env.action_mask(),
                            done: false,
                        };
                        if tx.send(t).is_err() {
                            break 'acting; // learner gone
                        }
                        if outcome.truncated {
                            let finished = {
                                let mut returns = episode_returns.lock();
                                returns.push(env_returns[i]);
                                returns.len()
                            };
                            observer.lock().on_event(
                                run_id,
                                &Event::EpisodeEnd {
                                    episode: finished,
                                    scalarized_return: env_returns[i],
                                },
                            );
                            env_returns[i] = 0.0;
                            env.reset(&mut rng);
                            record_design(run_id, &designs, env, observer, step_index);
                        }
                    }
                }
                drop(tx);
            });
        }
        drop(tx);
        // The actors hold the only remaining request senders: the broker
        // (if any) exits exactly when the last actor does.
        drop(broker_tx);

        // Learner (runs on this thread).
        let target = PrefixQNet::new(&QNetConfig {
            seed: cfg.qnet.seed ^ 0x5eed,
            ..cfg.qnet.clone()
        });
        let mut dqn = DoubleDqn::new(online, target, cfg.dqn.clone());
        let mut replay = ReplayBuffer::new(cfg.replay_capacity);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xdead);
        let mut losses = Vec::new();
        let mut since_publish = 0u64;
        while let Ok(t) = rx.recv() {
            replay.push(t);
            // Drain whatever else is queued to keep actors unblocked.
            while let Ok(t) = rx.try_recv() {
                replay.push(t);
            }
            if let Some(loss) = dqn.train_step(&replay, &mut rng) {
                losses.push(loss);
                observer.lock().on_event(
                    run_id,
                    &Event::GradStep {
                        grad_step: losses.len() as u64,
                        loss,
                    },
                );
                since_publish += 1;
                if since_publish >= cfg.dqn.target_sync_every {
                    since_publish = 0;
                    *board.snapshot.write() = Arc::new(dqn.online().frozen());
                    board.version.fetch_add(1, Ordering::Release);
                }
            }
        }
        losses
    });

    let designs = Arc::try_unwrap(designs)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone());
    // Sort by canonical key so async reports are stable to consume even
    // though the pool filled in nondeterministic order.
    let mut designs: Vec<(Vec<u64>, (PrefixGraph, ObjectivePoint))> = designs.into_iter().collect();
    designs.sort_by(|a, b| a.0.cmp(&b.0));
    // A cancelled run executed only the rounds claimed before the token
    // fired; a completed one claims past the budget but truncates its last
    // round, so the executed count is exactly the budget.
    let steps = steps_taken.load(Ordering::Relaxed).min(cfg.total_steps);
    RunRecord {
        run: run_id,
        w_area: cfg.dqn.weight[0] as f64,
        steps,
        designs: designs.into_iter().map(|(_, d)| d).collect(),
        losses,
        episode_returns: episode_returns.into_inner(),
    }
}

/// Trains with `num_actors` parallel experience generators and one learner.
#[deprecated(
    since = "0.2.0",
    note = "use `experiment::Experiment::builder().actors(n)` (or `AsyncRunner` directly) instead"
)]
pub fn train_async(
    cfg: &AgentConfig,
    evaluator: Arc<dyn Evaluator>,
    num_actors: usize,
) -> TrainResult {
    assert!(num_actors > 0, "need at least one actor");
    let task =
        task::by_name(&cfg.env.task).unwrap_or_else(|| panic!("unknown task `{}`", cfg.env.task));
    let record = run_async(
        0,
        cfg,
        task,
        evaluator,
        num_actors,
        true,
        &mut NullObserver,
        &CancelToken::new(),
    );
    TrainResult {
        designs: record.designs,
        losses: record.losses,
        episode_returns: record.episode_returns,
        steps: record.steps,
    }
}

fn record_design(
    run_id: usize,
    designs: &DesignPool,
    env: &PrefixEnv,
    observer: &Mutex<&mut dyn RunObserver>,
    step: u64,
) {
    let key = env.graph().canonical_key();
    let mut pool = designs.lock();
    if pool.contains_key(&key) {
        return;
    }
    pool.insert(key, (env.graph().clone(), env.metrics()));
    drop(pool);
    observer.lock().on_event(
        run_id,
        &Event::DesignFound {
            step,
            point: env.metrics(),
            size: env.graph().size(),
            depth: env.graph().depth() as usize,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedEvaluator;
    use crate::task::{Adder, TaskEvaluator};

    fn run(cfg: &AgentConfig, evaluator: Arc<dyn Evaluator>, actors: usize) -> RunRecord {
        run_async(
            0,
            cfg,
            Arc::new(Adder),
            evaluator,
            actors,
            true,
            &mut NullObserver,
            &CancelToken::new(),
        )
    }

    #[test]
    fn async_training_completes_and_harvests() {
        let mut cfg = AgentConfig::tiny(8, 0.5);
        cfg.total_steps = 400;
        let eval = Arc::new(CachedEvaluator::new(TaskEvaluator::analytical(Adder)));
        let result = run(&cfg, eval.clone(), 3);
        assert!(
            result.designs.len() > 20,
            "{} designs",
            result.designs.len()
        );
        assert!(!result.losses.is_empty(), "learner never trained");
        for (g, _) in &result.designs {
            g.verify_legal().unwrap();
        }
        // Actors share the cache: repeated start states must hit.
        assert!(eval.hits() > 0);
        // Async now reports per-environment episode returns too.
        assert!(!result.episode_returns.is_empty());
    }

    #[test]
    fn async_and_serial_explore_comparable_design_counts() {
        let mut cfg = AgentConfig::tiny(8, 0.5);
        cfg.total_steps = 300;
        let mut lp = crate::agent::TrainLoop::new(&cfg, Arc::new(TaskEvaluator::analytical(Adder)));
        lp.run_to_completion(0, &mut NullObserver);
        let serial = lp.into_parts().1;
        let parallel = run(&cfg, Arc::new(TaskEvaluator::analytical(Adder)), 2);
        // Same step budget → same order of magnitude of distinct designs.
        let (a, b) = (serial.designs.len() as f64, parallel.designs.len() as f64);
        assert!(a / b < 4.0 && b / a < 4.0, "serial {a} vs async {b}");
    }

    #[test]
    fn single_env_actors_still_work() {
        let mut cfg = AgentConfig::tiny(8, 0.5);
        cfg.total_steps = 200;
        cfg.envs_per_actor = 1;
        let result = run(&cfg, Arc::new(TaskEvaluator::analytical(Adder)), 2);
        assert!(
            result.designs.len() > 10,
            "{} designs",
            result.designs.len()
        );
    }

    /// The broker must be a pure transport: routing greedy forwards
    /// through it instead of running them on the actor may not perturb a
    /// trajectory. With one actor the run is fully deterministic once the
    /// learner never publishes (`target_sync_every` beyond the step
    /// budget pins the initial snapshot), so broker-on and broker-off
    /// must agree **bitwise** — same steps, same designs with the same
    /// metrics, same episode returns in the same order. Exploration coins
    /// are drawn before the request is sent, so RNG consumption matches
    /// by construction; this test pins the rest of the plumbing (request
    /// framing, reply scatter, state copies).
    #[test]
    fn broker_and_local_inference_produce_identical_trajectories() {
        let mut cfg = AgentConfig::tiny(8, 0.5);
        cfg.total_steps = 240;
        cfg.dqn.target_sync_every = u64::MAX; // never publish: frozen policy
        let mut records = [true, false].map(|batched| {
            run_async(
                0,
                &cfg,
                Arc::new(Adder),
                Arc::new(TaskEvaluator::analytical(Adder)),
                1,
                batched,
                &mut NullObserver,
                &CancelToken::new(),
            )
        });
        let [with_broker, without] = &mut records;
        assert_eq!(with_broker.steps, without.steps);
        assert_eq!(
            with_broker.episode_returns, without.episode_returns,
            "episode returns diverged"
        );
        assert_eq!(
            with_broker.designs.len(),
            without.designs.len(),
            "design pools diverged"
        );
        for ((ga, pa), (gb, pb)) in with_broker.designs.iter().zip(&without.designs) {
            assert_eq!(ga.canonical_key(), gb.canonical_key());
            assert_eq!((pa.area, pa.delay), (pb.area, pb.delay));
        }
    }

    fn bit_keys(states: &[Vec<f32>]) -> Vec<Vec<u32>> {
        states
            .iter()
            .map(|s| s.iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    fn slices(states: &[Vec<f32>]) -> Vec<&[f32]> {
        states.iter().map(Vec::as_slice).collect()
    }

    /// Per-state fake forward: Q-row is a function of the state alone,
    /// so a memoized reply and a recomputed reply are distinguishable
    /// from a wrong-row reply but not from each other.
    fn fake_infer(batch: &[&[f32]]) -> Vec<Vec<[f32; 2]>> {
        batch.iter().map(|s| vec![[s[0], -s[0]]]).collect()
    }

    /// Regression: memo-cap eviction used to `clear()` rows that the
    /// current cycle's reply scatter still needed — a state that is a
    /// memo *hit* this cycle is excluded from the fused batch, so after
    /// eviction its lookup panicked and took down the whole run. Trip
    /// the cap in a cycle that contains such a duplicate and check every
    /// row still comes back, with the table staying within the cap.
    #[test]
    fn broker_memo_cap_eviction_preserves_current_cycle_hits() {
        let mut memo = BrokerMemo::new(4);
        let warm: Vec<Vec<f32>> = (0..3).map(|i| vec![i as f32]).collect();
        let rows = memo.resolve(&bit_keys(&warm), &slices(&warm), fake_infer);
        assert_eq!(rows.len(), 3);
        // 3 memoized + 2 fresh > cap 4, and the first state is a hit.
        let trip: Vec<Vec<f32>> = vec![vec![0.0], vec![10.0], vec![11.0]];
        let rows = memo.resolve(&bit_keys(&trip), &slices(&trip), fake_infer);
        assert_eq!(
            rows,
            vec![vec![[0.0, 0.0]], vec![[10.0, -10.0]], vec![[11.0, -11.0]],]
        );
        assert!(memo.rows.len() <= 4, "{} entries", memo.rows.len());
    }

    /// The cap is a hard bound even when one cycle's fresh set alone
    /// exceeds it: the overflow portion is served but not memoized.
    #[test]
    fn broker_memo_never_exceeds_cap() {
        let mut memo = BrokerMemo::new(2);
        let big: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32 + 1.0]).collect();
        let rows = memo.resolve(&bit_keys(&big), &slices(&big), fake_infer);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row, &vec![[i as f32 + 1.0, -(i as f32 + 1.0)]]);
        }
        assert!(memo.rows.len() <= 2, "{} entries", memo.rows.len());
    }

    /// Repeats — across cycles and within one cycle — reach the fused
    /// forward exactly once; every key still gets its row.
    #[test]
    fn broker_memo_deduplicates_hits_and_in_cycle_repeats() {
        let mut memo = BrokerMemo::new(16);
        let states: Vec<Vec<f32>> = vec![vec![1.0], vec![2.0], vec![1.0]];
        let forwarded = std::cell::Cell::new(0usize);
        let counting = |batch: &[&[f32]]| {
            forwarded.set(forwarded.get() + batch.len());
            fake_infer(batch)
        };
        let first = memo.resolve(&bit_keys(&states), &slices(&states), counting);
        assert_eq!(forwarded.get(), 2, "in-cycle repeat reached the net");
        let second = memo.resolve(&bit_keys(&states), &slices(&states), counting);
        assert_eq!(forwarded.get(), 2, "memo hit reached the net");
        assert_eq!(first, second);
        memo.clear();
        memo.resolve(&bit_keys(&states), &slices(&states), counting);
        assert_eq!(forwarded.get(), 4, "clear() must drop memoized rows");
    }

    #[test]
    fn async_runner_rejects_resume() {
        let cfg = AgentConfig::tiny(8, 0.5);
        let mut lp = crate::agent::TrainLoop::new(&cfg, Arc::new(TaskEvaluator::analytical(Adder)));
        for _ in 0..10 {
            lp.step_once(0, &mut NullObserver);
        }
        let ckpt = lp.checkpoint();
        let runner = AsyncRunner::new(2);
        let err = runner
            .run(RunContext {
                run_id: 0,
                cfg: &cfg,
                task: Arc::new(Adder),
                evaluator: Arc::new(TaskEvaluator::analytical(Adder)),
                observer: &mut NullObserver,
                checkpoint_every: None,
                on_checkpoint: None,
                resume: Some(ckpt),
                halt_at: None,
                cancel: CancelToken::new(),
            })
            .unwrap_err();
        assert!(err.contains("resume"), "{err}");
    }

    #[test]
    fn async_runner_rejects_checkpoint_requests() {
        let cfg = AgentConfig::tiny(8, 0.5);
        for (every, halt) in [(Some(50), None), (None, Some(50))] {
            let err = AsyncRunner::new(2)
                .run(RunContext {
                    run_id: 0,
                    cfg: &cfg,
                    task: Arc::new(Adder),
                    evaluator: Arc::new(TaskEvaluator::analytical(Adder)),
                    observer: &mut NullObserver,
                    checkpoint_every: every,
                    on_checkpoint: None,
                    resume: None,
                    halt_at: halt,
                    cancel: CancelToken::new(),
                })
                .unwrap_err();
            assert!(err.contains("checkpointing"), "{err}");
        }
    }

    /// Serve-shutdown audit (DESIGN.md §13): a panic inside the async
    /// system must propagate out of `run_async`, not hang it. An
    /// evaluator panic unwinds an actor; the scope unwind drops its
    /// transition sender, the learner's `recv` disconnects once the last
    /// sender is gone, surviving actors exit through the send-error break,
    /// and the scope re-raises the panic. Symmetrically, a learner panic
    /// drops the receiver during unwind, every blocked `tx.send` errors,
    /// and all actors break — the `Arc<FrozenQNet>` snapshots they hold
    /// keep the learner's published weights alive until they exit, so no
    /// use-after-free window exists. This test pins the actor direction
    /// (the only one with an injection point) with a watchdog.
    #[test]
    fn evaluator_panic_propagates_instead_of_hanging() {
        struct PanicAfter {
            calls: AtomicU64,
        }
        impl Evaluator for PanicAfter {
            fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
                if self.calls.fetch_add(1, Ordering::SeqCst) >= 20 {
                    panic!("synthetic oracle failure");
                }
                ObjectivePoint {
                    area: graph.size() as f64,
                    delay: graph.depth() as f64,
                }
            }
            fn name(&self) -> &str {
                "panic-after"
            }
        }
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut cfg = AgentConfig::tiny(8, 0.5);
                cfg.total_steps = 100_000;
                AsyncRunner::new(3).train(
                    &cfg,
                    Arc::new(PanicAfter {
                        calls: AtomicU64::new(0),
                    }),
                )
            }));
            let _ = tx.send(outcome.is_err());
        });
        let panicked = rx
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("async system hung after an actor panic");
        assert!(panicked, "the panic must propagate to the caller");
    }

    /// Serve-shutdown audit (DESIGN.md §13): a `ChannelObserver` whose
    /// receiver is dropped mid-run must not stall training. The observer
    /// sends with `let _ =`, and the compat channel's `send` returns an
    /// error (rather than blocking) once the receiver is gone — even for
    /// senders already blocked on a full channel — so events are dropped
    /// and the run finishes.
    #[test]
    fn observer_receiver_dropped_mid_run_does_not_stall() {
        let mut cfg = AgentConfig::tiny(8, 0.5);
        cfg.total_steps = 300;
        // Capacity 1: without the disconnect-errors guarantee the very
        // first unconsumed event after the drop would block forever.
        let (mut observer, rx) = crate::experiment::ChannelObserver::bounded(1);
        let (tx, done) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let record = run_async(
                0,
                &cfg,
                Arc::new(Adder),
                Arc::new(TaskEvaluator::analytical(Adder)),
                2,
                true,
                &mut observer,
                &CancelToken::new(),
            );
            let _ = tx.send(record);
        });
        // Consume one event to prove the stream was live, then hang up
        // (the compat receiver has no recv_timeout; poll with a deadline).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            if rx.try_recv().is_ok() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no event ever arrived"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        drop(rx);
        let record = done
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("run stalled after the observer receiver was dropped");
        assert_eq!(record.steps, 300);
    }

    #[test]
    fn cancel_token_stops_async_run_with_partial_record() {
        let mut cfg = AgentConfig::tiny(8, 0.5);
        cfg.total_steps = 1_000_000; // far beyond what a test should run
        let token = CancelToken::new();
        let cancel_at = 300u64;
        let canceller = token.clone();
        let mut observer = crate::experiment::CallbackObserver::new(move |_, e| {
            if let Event::Step { step, .. } = e {
                if *step >= cancel_at {
                    canceller.cancel();
                }
            }
        });
        let record = run_async(
            0,
            &cfg,
            Arc::new(Adder),
            Arc::new(TaskEvaluator::analytical(Adder)),
            2,
            true,
            &mut observer,
            &token,
        );
        assert!(
            record.steps >= cancel_at && record.steps < cfg.total_steps,
            "cancel must stop the run early (steps = {})",
            record.steps
        );
        assert!(!record.designs.is_empty(), "partial pool must survive");
    }

    #[test]
    fn pause_and_resume_round_trips_async_run() {
        let mut cfg = AgentConfig::tiny(8, 0.5);
        cfg.total_steps = 200;
        let token = CancelToken::new();
        token.pause();
        let handle = {
            let token = token.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                run_async(
                    0,
                    &cfg,
                    Arc::new(Adder),
                    Arc::new(TaskEvaluator::analytical(Adder)),
                    2,
                    true,
                    &mut NullObserver,
                    &token,
                )
            })
        };
        // Paused before the first decision round: nothing may finish.
        std::thread::sleep(std::time::Duration::from_millis(150));
        assert!(!handle.is_finished(), "paused actors must block");
        token.resume();
        let record = handle.join().expect("run completes after resume");
        assert_eq!(record.steps, 200);
    }
}
