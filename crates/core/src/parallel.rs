//! The asynchronous distributed training system (paper Section IV-D).
//!
//! The paper's key systems observation is that DQN is off-policy, so
//! experience generation (environment + synthesis) decouples from gradient
//! computation: 192 synthesis workers fed one learner. This module
//! reproduces that architecture at thread scale:
//!
//! - [`evaluate_batch`] — a synthesis worker pool evaluating many graphs in
//!   parallel (used by the figure harnesses and the scaling benchmark);
//! - [`train_async`] — actor threads run episodes with periodically
//!   refreshed policy snapshots and stream transitions over a channel to a
//!   learner thread that trains and publishes parameters.

use crate::agent::{AgentConfig, TrainResult};
use crate::env::PrefixEnv;
use crate::evaluator::{Evaluator, ObjectivePoint};
use crate::qnet::{PrefixQNet, QNetConfig};
use crossbeam::channel;
use parking_lot::{Mutex, RwLock};
use prefix_graph::PrefixGraph;
use rand::prelude::*;
use rl::{DoubleDqn, EpsilonSchedule, QNetwork, ReplayBuffer, Transition};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Evaluates `graphs` concurrently on `threads` workers, preserving order.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn evaluate_batch(
    graphs: &[PrefixGraph],
    evaluator: &dyn Evaluator,
    threads: usize,
) -> Vec<ObjectivePoint> {
    assert!(threads > 0, "need at least one worker");
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<ObjectivePoint>>> =
        (0..graphs.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(graphs.len().max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= graphs.len() {
                    break;
                }
                *results[i].lock() = Some(evaluator.evaluate(&graphs[i]));
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("worker filled every slot"))
        .collect()
}

/// Shared policy snapshot published by the learner.
struct PolicyBoard {
    version: AtomicU64,
    params: RwLock<Vec<Vec<f32>>>,
}

/// Trains with `num_actors` parallel experience generators and one learner.
///
/// Semantics match [`crate::agent::train`] (same config fields), but
/// experience arrives asynchronously, so per-step pairing of acting and
/// learning is not bit-identical to the serial path. Total environment
/// steps across all actors equal `cfg.total_steps`.
pub fn train_async(
    cfg: &AgentConfig,
    evaluator: Arc<dyn Evaluator>,
    num_actors: usize,
) -> TrainResult {
    assert!(num_actors > 0, "need at least one actor");
    let mut online = PrefixQNet::new(&cfg.qnet);
    let board = Arc::new(PolicyBoard {
        version: AtomicU64::new(1),
        params: RwLock::new(online.state()),
    });
    let (tx, rx) = channel::bounded::<Transition>(4096);
    let steps_taken = Arc::new(AtomicU64::new(0));
    let designs: Arc<Mutex<HashMap<Vec<u64>, (PrefixGraph, ObjectivePoint)>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let schedule = EpsilonSchedule::linear(cfg.eps_start, cfg.eps_end, cfg.eps_decay_steps);

    let losses = std::thread::scope(|s| {
        // Actors.
        for actor in 0..num_actors {
            let tx = tx.clone();
            let board = Arc::clone(&board);
            let steps_taken = Arc::clone(&steps_taken);
            let designs = Arc::clone(&designs);
            let evaluator = Arc::clone(&evaluator);
            let cfg = cfg.clone();
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (actor as u64 + 1) * 0x9e37);
                let mut net = PrefixQNet::new(&cfg.qnet);
                let mut my_version = 0u64;
                let weight = cfg.dqn.weight;
                let mut env = PrefixEnv::new(cfg.env.clone(), evaluator);
                env.reset(&mut rng);
                record_design(&designs, &env);
                loop {
                    let step = steps_taken.fetch_add(1, Ordering::Relaxed);
                    if step >= cfg.total_steps {
                        break;
                    }
                    // Refresh the policy snapshot when the learner published.
                    let published = board.version.load(Ordering::Acquire);
                    if published != my_version {
                        let params = board.params.read().clone();
                        net.load_state(&params).expect("same architecture");
                        my_version = published;
                    }
                    let state = env.features();
                    let mask = env.action_mask();
                    let eps = schedule.value(step);
                    let action =
                        select_action(&mut net, &state, &mask, weight, eps, &mut rng)
                            .expect("legal action always exists");
                    let outcome = env.step_flat(action);
                    record_design(&designs, &env);
                    let t = Transition {
                        state,
                        action,
                        reward: outcome.reward,
                        next_state: env.features(),
                        next_mask: env.action_mask(),
                        done: false,
                    };
                    if tx.send(t).is_err() {
                        break; // learner gone
                    }
                    if outcome.truncated {
                        env.reset(&mut rng);
                        record_design(&designs, &env);
                    }
                }
                drop(tx);
            });
        }
        drop(tx);

        // Learner (runs on this thread).
        let target = PrefixQNet::new(&QNetConfig {
            seed: cfg.qnet.seed ^ 0x5eed,
            ..cfg.qnet.clone()
        });
        let mut dqn = DoubleDqn::new(online, target, cfg.dqn.clone());
        let mut replay = ReplayBuffer::new(cfg.replay_capacity);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xdead);
        let mut losses = Vec::new();
        let mut since_publish = 0u64;
        while let Ok(t) = rx.recv() {
            replay.push(t);
            // Drain whatever else is queued to keep actors unblocked.
            while let Ok(t) = rx.try_recv() {
                replay.push(t);
            }
            if let Some(loss) = dqn.train_step(&replay, &mut rng) {
                losses.push(loss);
                since_publish += 1;
                if since_publish >= cfg.dqn.target_sync_every {
                    since_publish = 0;
                    *board.params.write() = dqn.online_mut().state();
                    board.version.fetch_add(1, Ordering::Release);
                }
            }
        }
        losses
    });

    let designs = Arc::try_unwrap(designs)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone());
    TrainResult {
        designs: designs.into_values().collect(),
        losses,
        episode_returns: Vec::new(),
        steps: cfg.total_steps,
    }
}

fn record_design(
    designs: &Mutex<HashMap<Vec<u64>, (PrefixGraph, ObjectivePoint)>>,
    env: &PrefixEnv,
) {
    designs
        .lock()
        .entry(env.graph().canonical_key())
        .or_insert_with(|| (env.graph().clone(), env.metrics()));
}

/// ε-greedy scalarized action selection against a raw Q-network (actors do
/// not carry a full trainer).
fn select_action(
    net: &mut PrefixQNet,
    state: &[f32],
    mask: &[bool],
    weight: [f32; 2],
    epsilon: f64,
    rng: &mut StdRng,
) -> Option<usize> {
    let legal: Vec<usize> = mask
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(a, _)| a)
        .collect();
    if legal.is_empty() {
        return None;
    }
    if rng.random::<f64>() < epsilon {
        return Some(legal[rng.random_range(0..legal.len())]);
    }
    let q = net.forward(&[state], false).pop().expect("batch of 1");
    legal
        .into_iter()
        .map(|a| (a, weight[0] * q[a][0] + weight[1] * q[a][1]))
        .max_by(|x, y| x.1.total_cmp(&y.1))
        .map(|(a, _)| a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedEvaluator;
    use crate::evaluator::AnalyticalEvaluator;
    use prefix_graph::structures;

    #[test]
    fn evaluate_batch_matches_serial() {
        let graphs: Vec<PrefixGraph> = vec![
            PrefixGraph::ripple(8),
            structures::sklansky(8),
            structures::kogge_stone(8),
            structures::brent_kung(8),
            structures::han_carlson(8),
        ];
        let ev = AnalyticalEvaluator;
        let parallel = evaluate_batch(&graphs, &ev, 4);
        let serial: Vec<ObjectivePoint> = graphs.iter().map(|g| ev.evaluate(g)).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn evaluate_batch_single_thread_ok() {
        let graphs = vec![PrefixGraph::ripple(8)];
        let out = evaluate_batch(&graphs, &AnalyticalEvaluator, 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn async_training_completes_and_harvests() {
        let mut cfg = AgentConfig::tiny(8, 0.5);
        cfg.total_steps = 400;
        let eval = Arc::new(CachedEvaluator::new(AnalyticalEvaluator));
        let result = train_async(&cfg, eval.clone(), 3);
        assert!(result.designs.len() > 20, "{} designs", result.designs.len());
        assert!(!result.losses.is_empty(), "learner never trained");
        for (g, _) in &result.designs {
            g.verify_legal().unwrap();
        }
        // Actors share the cache: repeated start states must hit.
        assert!(eval.hits() > 0);
    }

    #[test]
    fn async_and_serial_explore_comparable_design_counts() {
        let mut cfg = AgentConfig::tiny(8, 0.5);
        cfg.total_steps = 300;
        let serial = crate::agent::train(&cfg, Arc::new(AnalyticalEvaluator));
        let parallel = train_async(&cfg, Arc::new(AnalyticalEvaluator), 2);
        // Same step budget → same order of magnitude of distinct designs.
        let (a, b) = (serial.designs.len() as f64, parallel.designs.len() as f64);
        assert!(a / b < 4.0 && b / a < 4.0, "serial {a} vs async {b}");
    }
}
