//! The evaluation service: one front door for all reward evaluation.
//!
//! Related RL-for-synthesis systems show that evaluation throughput — not
//! the learner — is the scaling bottleneck, so this module centralizes how
//! the workspace turns prefix graphs into `(area, delay)` points:
//!
//! - [`EvalService`] wraps any [`Evaluator`] (typically a sharded
//!   [`crate::cache::CachedEvaluator`] around a
//!   [`crate::task::TaskEvaluator`]) with a worker-pool batch
//!   path. It implements [`Evaluator`] itself, so environments, agents,
//!   figure harnesses, and the CLI all take it wherever an evaluator is
//!   expected — single-state calls pass straight through while
//!   [`Evaluator::evaluate_many`] fans out across threads.
//! - [`evaluate_batch`] is the underlying worker pool: scoped threads pull
//!   indices from a shared counter (dynamic load balancing for
//!   variable-cost synthesis jobs) into worker-local buffers, so there is
//!   no per-slot locking.

use crate::evaluator::{Evaluator, ObjectivePoint};
use prefix_graph::PrefixGraph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Evaluates `graphs` on up to `threads` workers, preserving order.
///
/// Workers pull indices from a shared atomic counter (so variable-cost
/// jobs — synthesis times differ per graph, and cache hits are near-free
/// next to misses — stay load-balanced) and accumulate into worker-local
/// buffers; there are no per-slot locks. An empty batch returns
/// immediately without spawning anything.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn evaluate_batch(
    graphs: &[PrefixGraph],
    evaluator: &dyn Evaluator,
    threads: usize,
) -> Vec<ObjectivePoint> {
    assert!(threads > 0, "need at least one worker");
    if graphs.is_empty() {
        return Vec::new();
    }
    if threads == 1 || graphs.len() == 1 {
        return graphs.iter().map(|g| evaluator.evaluate(g)).collect();
    }
    let next = AtomicUsize::new(0);
    let worker = || {
        let mut local = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(graph) = graphs.get(i) else {
                return local;
            };
            local.push((i, evaluator.evaluate(graph)));
        }
    };
    let placeholder = ObjectivePoint {
        area: f64::NAN,
        delay: f64::NAN,
    };
    let mut results = vec![placeholder; graphs.len()];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads.min(graphs.len()))
            .map(|_| s.spawn(worker))
            .collect();
        for handle in handles {
            for (i, point) in handle.join().expect("evaluation worker panicked") {
                results[i] = point;
            }
        }
    });
    results
}

/// A shared evaluation front door: any [`Evaluator`] plus a thread budget
/// for batch work.
///
/// Cloning is cheap (the inner evaluator is behind an [`Arc`]), so one
/// service can be handed to every actor, harness, and CLI command of a run
/// — which is exactly what gives a shared cache its hit rate.
#[derive(Clone)]
pub struct EvalService {
    inner: Arc<dyn Evaluator>,
    threads: usize,
}

impl EvalService {
    /// Wraps `inner`, fanning batch evaluation across `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(inner: Arc<dyn Evaluator>, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        EvalService { inner, threads }
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &Arc<dyn Evaluator> {
        &self.inner
    }

    /// The batch-evaluation thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Evaluator for EvalService {
    fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
        self.inner.evaluate(graph)
    }

    fn evaluate_many(&self, graphs: &[PrefixGraph]) -> Vec<ObjectivePoint> {
        evaluate_batch(graphs, &*self.inner, self.threads)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn cache_discriminant(&self) -> u64 {
        self.inner.cache_discriminant()
    }

    fn bound_task_id(&self) -> Option<&str> {
        self.inner.bound_task_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedEvaluator;
    use crate::task::{Adder, TaskEvaluator};
    use prefix_graph::structures;

    fn adder_analytical() -> TaskEvaluator {
        TaskEvaluator::analytical(Adder)
    }

    fn mixed_graphs(n: u16) -> Vec<PrefixGraph> {
        vec![
            PrefixGraph::ripple(n),
            structures::sklansky(n),
            structures::kogge_stone(n),
            structures::brent_kung(n),
            structures::han_carlson(n),
        ]
    }

    #[test]
    fn evaluate_batch_matches_serial() {
        let graphs = mixed_graphs(8);
        let ev = adder_analytical();
        let parallel = evaluate_batch(&graphs, &ev, 4);
        let serial: Vec<ObjectivePoint> = graphs.iter().map(|g| ev.evaluate(g)).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn evaluate_batch_single_thread_ok() {
        let graphs = vec![PrefixGraph::ripple(8)];
        let out = evaluate_batch(&graphs, &adder_analytical(), 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn evaluate_batch_empty_spawns_nothing() {
        let out = evaluate_batch(&[], &adder_analytical(), 8);
        assert!(out.is_empty());
    }

    #[test]
    fn evaluate_batch_more_threads_than_graphs() {
        let graphs = mixed_graphs(8);
        let out = evaluate_batch(&graphs, &adder_analytical(), 64);
        assert_eq!(out.len(), graphs.len());
        assert!(out.iter().all(|p| p.area.is_finite()));
    }

    #[test]
    fn service_evaluate_many_equals_per_graph_evaluate() {
        for threads in [1, 2, 3, 8] {
            let service = EvalService::new(Arc::new(adder_analytical()), threads);
            let graphs = mixed_graphs(16);
            let many = service.evaluate_many(&graphs);
            let singles: Vec<ObjectivePoint> = graphs.iter().map(|g| service.evaluate(g)).collect();
            assert_eq!(many, singles, "threads={threads}");
        }
    }

    /// Serve-shutdown audit (DESIGN.md §13): dropping an `EvalService`
    /// while a clone still has a batch in flight must neither hang nor
    /// lose results. The service holds no threads or queues of its own —
    /// batch workers are scoped to each `evaluate_many` call — so the
    /// in-flight batch completes on the clone and the drop is inert.
    #[test]
    fn drop_with_inflight_batch_completes() {
        struct Slow;
        impl Evaluator for Slow {
            fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
                std::thread::sleep(std::time::Duration::from_millis(20));
                ObjectivePoint {
                    area: graph.size() as f64,
                    delay: graph.depth() as f64,
                }
            }
            fn name(&self) -> &str {
                "slow"
            }
        }
        let service = EvalService::new(Arc::new(Slow), 4);
        let clone = service.clone();
        let graphs = mixed_graphs(8);
        let (tx, rx) = std::sync::mpsc::channel();
        let worker = std::thread::spawn({
            let graphs = graphs.clone();
            move || {
                let _ = tx.send(clone.evaluate_many(&graphs));
            }
        });
        drop(service); // the original handle dies mid-batch
        let results = rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("in-flight batch lost after service drop");
        worker.join().unwrap();
        assert_eq!(results.len(), graphs.len());
        assert!(results.iter().all(|p| p.area.is_finite()));
    }

    #[test]
    fn service_shares_cache_across_paths() {
        let cache = Arc::new(CachedEvaluator::new(adder_analytical()));
        let service = EvalService::new(cache.clone(), 4);
        let graphs = mixed_graphs(8);
        let first = service.evaluate_many(&graphs);
        let second = service.evaluate_many(&graphs);
        assert_eq!(first, second);
        assert_eq!(cache.misses(), graphs.len() as u64);
        assert!(cache.hits() >= graphs.len() as u64);
    }
}
