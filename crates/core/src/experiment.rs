//! Experiment sessions: builder-configured weight sweeps, run events, and
//! checkpoint/resume (DESIGN.md §10).
//!
//! The paper's headline result is an *ensemble*: 15 Double-DQN agents over
//! `w_area ∈ [0.10, 0.99]` whose visited designs merge into the Fig. 4
//! fronts, all sharing the Section IV-D evaluation cache. This module is
//! the session layer that makes that shape first-class:
//!
//! - [`Experiment`] — built with [`Experiment::builder`], owns the shared
//!   [`CachedEvaluator`]/[`EvalService`] stack and a [`Run`] handle per
//!   scalarization weight; running it fans agents out over the service's
//!   thread budget so the cross-agent cache sharing actually happens
//!   in-process.
//! - [`Runner`] — the one training-loop abstraction. [`SerialRunner`]
//!   (deterministic, checkpointable) and [`AsyncRunner`] (actor/learner
//!   threads, see [`crate::parallel`]) both implement it; the historical
//!   `train*` free functions are thin deprecated wrappers over it.
//! - [`RunObserver`] + [`Event`] — a streaming event interface replacing
//!   the return-everything-at-the-end result blob: per-step, per-gradient,
//!   per-episode, per-design, and per-checkpoint events, with
//!   callback-backed ([`CallbackObserver`]) and channel-backed
//!   ([`ChannelObserver`]) sinks.
//! - [`ExperimentResult`] — per-agent [`RunRecord`]s, the merged Pareto
//!   front, and shared-cache statistics, with one JSON schema
//!   (`prefixrl.experiment.v1`) for single runs and sweeps alike.
//!
//! Checkpointing (see [`crate::checkpoint`]) makes a killed sweep restart
//! where it stopped and produce bit-identical designs and losses to an
//! uninterrupted run.

use crate::agent::{AgentConfig, TrainLoop};
use crate::cache::{CacheConfig, CachedEvaluator};
use crate::checkpoint::{Checkpoint, RunState, SweepCheckpoint};
use crate::env::{EnvConfig, PrefixEnv};
use crate::evalsvc::EvalService;
use crate::evaluator::{Evaluator, ObjectivePoint};
use crate::pareto::ParetoFront;
use crate::qnet::PrefixQNet;
use crate::task::{self, Adder, AnalyticalBackend, CircuitTask, ObjectiveBackend, TaskEvaluator};
use parking_lot::Mutex;
use prefix_graph::PrefixGraph;
use rand::prelude::*;
use rl::DoubleDqn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------- events

/// One observation from a training run, streamed as it happens.
#[derive(Clone, Debug)]
pub enum Event {
    /// An environment step was taken.
    Step {
        /// Environment step index (0-based).
        step: u64,
        /// Exploration ε used for this step.
        epsilon: f64,
        /// Scaled reward vector `[r_area, r_delay]`.
        reward: [f32; 2],
    },
    /// A gradient step completed.
    GradStep {
        /// Gradient step count (1-based).
        grad_step: u64,
        /// Scalar Huber loss.
        loss: f32,
    },
    /// An episode hit its truncation budget.
    EpisodeEnd {
        /// Completed-episode count (1-based).
        episode: usize,
        /// Scalarized return of the episode.
        scalarized_return: f64,
    },
    /// A design not seen before by this run entered the pool.
    DesignFound {
        /// Environment step at which it was found.
        step: u64,
        /// Its evaluated objectives.
        point: ObjectivePoint,
        /// Prefix-graph node count.
        size: usize,
        /// Prefix-graph depth.
        depth: usize,
    },
    /// A checkpoint of the run was captured.
    CheckpointSaved {
        /// Environment step the checkpoint covers.
        step: u64,
    },
}

/// A sink for [`Event`]s, tagged with the emitting run's id.
///
/// Observers must be `Send`: a sweep calls one observer from several agent
/// threads (serialized behind a lock).
pub trait RunObserver: Send {
    /// Receives one event from run `run`.
    fn on_event(&mut self, run: usize, event: &Event);
}

/// Discards every event (the default sink).
pub struct NullObserver;

impl RunObserver for NullObserver {
    fn on_event(&mut self, _run: usize, _event: &Event) {}
}

/// Calls a closure on every event.
pub struct CallbackObserver<F: FnMut(usize, &Event) + Send> {
    f: F,
}

impl<F: FnMut(usize, &Event) + Send> CallbackObserver<F> {
    /// Wraps `f` as an observer.
    pub fn new(f: F) -> Self {
        CallbackObserver { f }
    }
}

impl<F: FnMut(usize, &Event) + Send> RunObserver for CallbackObserver<F> {
    fn on_event(&mut self, run: usize, event: &Event) {
        (self.f)(run, event)
    }
}

/// Streams `(run, event)` pairs over a bounded channel, decoupling event
/// consumers (logging, UIs) from the training threads.
pub struct ChannelObserver {
    tx: crossbeam::channel::Sender<(usize, Event)>,
}

impl ChannelObserver {
    /// Creates an observer and the receiving end of its channel.
    ///
    /// Events are dropped (not blocked on) once the receiver disconnects;
    /// while connected, a full channel applies back-pressure.
    pub fn bounded(capacity: usize) -> (Self, crossbeam::channel::Receiver<(usize, Event)>) {
        let (tx, rx) = crossbeam::channel::bounded(capacity);
        (ChannelObserver { tx }, rx)
    }
}

impl RunObserver for ChannelObserver {
    fn on_event(&mut self, run: usize, event: &Event) {
        // A disconnected receiver means nobody is listening; training
        // continues unobserved rather than failing.
        let _ = self.tx.send((run, event.clone()));
    }
}

// ---------------------------------------------------------------- cancel

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TokenState {
    Running,
    Paused,
    Cancelled,
}

struct TokenInner {
    state: std::sync::Mutex<TokenState>,
    wake: std::sync::Condvar,
}

/// A cooperative cancel/pause handle threaded through every [`Runner`].
///
/// Cloning is cheap (clones share one state) and any clone may flip it.
/// Runners poll the token between environment steps (serial) or decision
/// rounds (async), so [`CancelToken::cancel`] stops a run within one event
/// tick: the serial runner saves a checkpoint exactly as `halt_at` does
/// (the run stays resumable), the async runner drains its actors and
/// returns the partial record. [`CancelToken::pause`] blocks the training
/// threads at the same poll points without losing any state until
/// [`CancelToken::resume`]; cancelling also wakes paused runs so they can
/// exit. Cancellation is permanent — a cancelled token never resumes.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh token in the running state.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                state: std::sync::Mutex::new(TokenState::Running),
                wake: std::sync::Condvar::new(),
            }),
        }
    }

    fn state(&self) -> TokenState {
        *self.inner.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn set(&self, to: TokenState) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        // Cancellation is sticky: pause/resume after cancel are no-ops.
        if *state != TokenState::Cancelled || to == TokenState::Cancelled {
            *state = to;
        }
        drop(state);
        self.inner.wake.notify_all();
    }

    /// Requests cancellation; observed within one step/decision round.
    pub fn cancel(&self) {
        self.set(TokenState::Cancelled);
    }

    /// Requests a pause; runs block at their next poll point.
    pub fn pause(&self) {
        self.set(TokenState::Paused);
    }

    /// Resumes a paused token (no-op if cancelled).
    pub fn resume(&self) {
        self.set(TokenState::Running);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.state() == TokenState::Cancelled
    }

    /// Whether the token is currently paused.
    pub fn is_paused(&self) -> bool {
        self.state() == TokenState::Paused
    }

    /// The runner-side poll: blocks while paused, then reports whether the
    /// run should stop (`true` = cancelled).
    pub fn wait_while_paused(&self) -> bool {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        while *state == TokenState::Paused {
            state = self
                .inner
                .wake
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        *state == TokenState::Cancelled
    }
}

// --------------------------------------------------------------- weights

/// The scalarization-weight schedule of a sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Weights(Vec<f64>);

impl Weights {
    /// A single weight.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ w ≤ 1`.
    pub fn single(w: f64) -> Self {
        Self::list(vec![w])
    }

    /// An explicit weight list.
    ///
    /// Duplicate weights are **rejected loudly**, not silently deduped: a
    /// duplicate would spawn a redundant agent that burns a full sweep
    /// slot and double-counts its designs in the merged front, and a
    /// silent dedupe would shift the run-id ↔ weight mapping under the
    /// caller. Callers generating weights programmatically should use
    /// [`Weights::try_list`] (same validation, recoverable error) or
    /// [`Weights::linspace`] (which collapses float-equal points itself).
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, any weight lies outside `[0, 1]`, or
    /// the list contains duplicates.
    pub fn list(ws: Vec<f64>) -> Self {
        Self::try_list(ws).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The non-panicking form of [`Weights::list`], for callers validating
    /// untrusted input (the serve protocol, CLI flags).
    ///
    /// # Errors
    ///
    /// Fails if the list is empty, any weight lies outside `[0, 1]`, or
    /// the list contains (float-equal) duplicates.
    pub fn try_list(ws: Vec<f64>) -> Result<Self, String> {
        if ws.is_empty() {
            return Err("need at least one weight".to_string());
        }
        for &w in &ws {
            if !(0.0..=1.0).contains(&w) {
                return Err(format!("weight {w} outside [0, 1]"));
            }
        }
        for i in 0..ws.len() {
            for j in (i + 1)..ws.len() {
                if ws[i] == ws[j] {
                    return Err(format!(
                        "duplicate weight {} (positions {i} and {j}): each agent \
                         must train a distinct scalarization — a duplicate burns \
                         a sweep slot and double-counts in the merged front",
                        ws[i]
                    ));
                }
            }
        }
        Ok(Weights(ws))
    }

    /// `k` weights linearly spaced over `[lo, hi]` (the paper uses
    /// `linspace(0.10, 0.99, 15)`); `k = 1` yields `lo`.
    ///
    /// Float-equal neighbours are collapsed, so a degenerate range
    /// (`linspace(0.5, 0.5 + 1e-18, 3)`, where every point rounds to the
    /// same f64) yields *fewer than `k`* weights rather than duplicate
    /// agents; the endpoints themselves are always preserved.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `lo > hi`, or either endpoint is outside
    /// `[0, 1]`.
    pub fn linspace(lo: f64, hi: f64, k: usize) -> Self {
        assert!(k > 0, "need at least one weight");
        assert!(lo <= hi, "empty weight range");
        if k == 1 {
            return Self::single(lo);
        }
        let mut ws: Vec<f64> = (0..k)
            .map(|i| lo + (hi - lo) * i as f64 / (k - 1) as f64)
            .collect();
        // The sequence is nondecreasing, so consecutive dedup removes all
        // float-equal points a tiny range collapses onto.
        ws.dedup();
        Self::list(ws)
    }

    /// The weights, in run order.
    pub fn values(&self) -> &[f64] {
        &self.0
    }

    /// Number of weights (= number of agents).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the schedule is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

// --------------------------------------------------------------- records

/// What one agent's run produced (the serializable core of the old
/// `TrainResult`, tagged with its sweep position).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunRecord {
    /// Run id (index into the sweep's weight list).
    pub run: usize,
    /// The agent's scalarization weight `w_area`.
    pub w_area: f64,
    /// Environment steps executed.
    pub steps: u64,
    /// Every distinct design visited, with evaluated objectives.
    pub designs: Vec<(PrefixGraph, ObjectivePoint)>,
    /// Per-gradient-step losses.
    pub losses: Vec<f32>,
    /// Scalarized episode returns.
    pub episode_returns: Vec<f64>,
}

impl RunRecord {
    /// The Pareto front over this run's designs.
    pub fn front(&self) -> ParetoFront<PrefixGraph> {
        self.designs.iter().map(|(g, p)| (*p, g.clone())).collect()
    }

    /// A partial record reflecting a mid-run checkpoint (used when a sweep
    /// halts before this run finishes).
    pub fn from_checkpoint(run: usize, ckpt: &Checkpoint) -> Self {
        RunRecord {
            run,
            w_area: ckpt.cfg.dqn.weight[0] as f64,
            steps: ckpt.step,
            designs: ckpt.designs.clone(),
            losses: ckpt.losses.clone(),
            episode_returns: ckpt.episode_returns.clone(),
        }
    }
}

// ---------------------------------------------------------------- runner

/// Everything a [`Runner`] needs for one agent's run.
pub struct RunContext<'a> {
    /// Run id (sweep position; 0 for single runs).
    pub run_id: usize,
    /// The agent configuration.
    pub cfg: &'a AgentConfig,
    /// The circuit task being optimized (see [`crate::task`]).
    pub task: Arc<dyn CircuitTask>,
    /// The (typically shared) evaluator stack.
    pub evaluator: Arc<dyn Evaluator>,
    /// Event sink.
    pub observer: &'a mut dyn RunObserver,
    /// Capture a checkpoint every this many environment steps.
    pub checkpoint_every: Option<u64>,
    /// Receives each captured checkpoint (the sweep persists it).
    pub on_checkpoint: Option<&'a mut dyn FnMut(usize, Checkpoint)>,
    /// Resume from this checkpoint instead of starting fresh.
    pub resume: Option<Checkpoint>,
    /// Stop after this many environment steps, saving a checkpoint — for
    /// interrupt/resume testing and CI smoke runs.
    pub halt_at: Option<u64>,
    /// Cooperative cancel/pause handle, polled between steps (serial) or
    /// decision rounds (async). A run stopped by it returns a partial
    /// outcome with `completed == false`.
    pub cancel: CancelToken,
}

/// The outcome of one agent's (possibly halted) run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The run record (partial if `completed` is false).
    pub record: RunRecord,
    /// Whether the step budget was exhausted (false after `halt_at`).
    pub completed: bool,
}

/// The single training-loop abstraction: both the serial loop and the
/// async actor/learner system run one agent to completion behind this
/// interface, which is what lets [`Experiment`] treat them uniformly.
pub trait Runner: Sync {
    /// Runs one agent per `ctx`, streaming events to its observer.
    ///
    /// # Errors
    ///
    /// Fails on an invalid resume checkpoint or an unsupported
    /// context/runner combination.
    fn run(&self, ctx: RunContext<'_>) -> Result<RunOutcome, String>;
}

/// The deterministic serial runner (one environment, exact
/// checkpoint/resume) — [`crate::agent::TrainLoop`] behind the [`Runner`]
/// interface.
pub struct SerialRunner;

impl Runner for SerialRunner {
    fn run(&self, mut ctx: RunContext<'_>) -> Result<RunOutcome, String> {
        let mut lp = match ctx.resume.take() {
            Some(ckpt) => TrainLoop::from_checkpoint_with_task(
                &ckpt,
                Arc::clone(&ctx.task),
                Arc::clone(&ctx.evaluator),
            )?,
            None => {
                TrainLoop::with_task(ctx.cfg, Arc::clone(&ctx.task), Arc::clone(&ctx.evaluator))
            }
        };
        loop {
            // Poll the token between steps: pause blocks right here (no
            // state is lost), cancel snapshots and stops exactly like a
            // halt, so a cancelled run resumes from its checkpoint.
            if ctx.cancel.wait_while_paused() && !lp.is_done() {
                let ckpt = lp.checkpoint();
                let step = lp.step();
                if let Some(cb) = ctx.on_checkpoint.as_mut() {
                    cb(ctx.run_id, ckpt.clone());
                }
                ctx.observer
                    .on_event(ctx.run_id, &Event::CheckpointSaved { step });
                return Ok(RunOutcome {
                    record: RunRecord::from_checkpoint(ctx.run_id, &ckpt),
                    completed: false,
                });
            }
            if let Some(halt) = ctx.halt_at {
                if lp.step() >= halt && !lp.is_done() {
                    let ckpt = lp.checkpoint();
                    let step = lp.step();
                    if let Some(cb) = ctx.on_checkpoint.as_mut() {
                        cb(ctx.run_id, ckpt.clone());
                    }
                    ctx.observer
                        .on_event(ctx.run_id, &Event::CheckpointSaved { step });
                    return Ok(RunOutcome {
                        record: RunRecord::from_checkpoint(ctx.run_id, &ckpt),
                        completed: false,
                    });
                }
            }
            if !lp.step_once(ctx.run_id, ctx.observer) {
                break;
            }
            if let Some(every) = ctx.checkpoint_every {
                if every > 0 && lp.step().is_multiple_of(every) && !lp.is_done() {
                    let ckpt = lp.checkpoint();
                    let step = lp.step();
                    if let Some(cb) = ctx.on_checkpoint.as_mut() {
                        cb(ctx.run_id, ckpt);
                    }
                    ctx.observer
                        .on_event(ctx.run_id, &Event::CheckpointSaved { step });
                }
            }
        }
        let run = ctx.run_id;
        let w_area = ctx.cfg.dqn.weight[0] as f64;
        let (_, result) = lp.into_parts();
        Ok(RunOutcome {
            record: RunRecord {
                run,
                w_area,
                steps: result.steps,
                designs: result.designs,
                losses: result.losses,
                episode_returns: result.episode_returns,
            },
            completed: true,
        })
    }
}

/// Rolls out the greedy policy (ε = 0) from each starting state, returning
/// the designs visited — how trained agents emit their final adders.
pub fn greedy_designs(
    dqn: &mut DoubleDqn<PrefixQNet>,
    cfg: &EnvConfig,
    evaluator: Arc<dyn Evaluator>,
    episodes: usize,
    seed: u64,
) -> Vec<(PrefixGraph, ObjectivePoint)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut env = PrefixEnv::new(cfg.clone(), evaluator);
    let mut out: BTreeMap<Vec<u64>, (PrefixGraph, ObjectivePoint)> = BTreeMap::new();
    let record = |env: &PrefixEnv, out: &mut BTreeMap<_, (PrefixGraph, ObjectivePoint)>| {
        out.entry(env.graph().canonical_key())
            .or_insert_with(|| (env.graph().clone(), env.metrics()));
    };
    for _ in 0..episodes {
        env.reset(&mut rng);
        record(&env, &mut out);
        loop {
            let state = env.features();
            let mask = env.action_mask();
            let Some(a) = dqn.greedy_action(&state, &mask) else {
                break;
            };
            let outcome = env.step_flat(a);
            record(&env, &mut out);
            if outcome.truncated {
                break;
            }
        }
    }
    out.into_values().collect()
}

// ------------------------------------------------------------ experiment

/// A handle to one configured agent of an experiment.
#[derive(Clone)]
pub struct Run {
    /// Run id (index into the weight list).
    pub id: usize,
    /// This agent's scalarization weight.
    pub w_area: f64,
    /// The full agent configuration the runner executes.
    pub cfg: AgentConfig,
}

impl Run {
    /// Executes this run alone with an explicit runner and evaluator —
    /// the escape hatch under [`Experiment::run`]'s orchestration. The
    /// task is resolved from `cfg.env.task` through the built-in registry.
    ///
    /// # Errors
    ///
    /// Fails on an unregistered task id and propagates runner failures
    /// (e.g. an invalid resume checkpoint).
    pub fn execute(
        &self,
        runner: &dyn Runner,
        evaluator: Arc<dyn Evaluator>,
        observer: &mut dyn RunObserver,
    ) -> Result<RunOutcome, String> {
        let task = task::by_name(&self.cfg.env.task).ok_or_else(|| {
            format!(
                "unknown task `{}` (registered: {:?})",
                self.cfg.env.task,
                task::TASK_NAMES
            )
        })?;
        runner.run(RunContext {
            run_id: self.id,
            cfg: &self.cfg,
            task,
            evaluator,
            observer,
            checkpoint_every: None,
            on_checkpoint: None,
            resume: None,
            halt_at: None,
            cancel: CancelToken::new(),
        })
    }
}

/// An externally owned evaluation stack: an evaluator binding (typically
/// over a shared [`crate::cache::EvalCache`] store) plus the
/// [`EvalService`] wrapping it — what [`ExperimentBuilder::eval_stack`]
/// accepts.
pub type EvalStack = (Arc<CachedEvaluator<Box<dyn Evaluator>>>, Arc<EvalService>);

/// Builder for [`Experiment`] — see the module docs for the full shape.
pub struct ExperimentBuilder {
    n: u16,
    weights: Weights,
    steps: u64,
    seed: u64,
    base: Option<AgentConfig>,
    task: Arc<dyn CircuitTask>,
    backend: Arc<dyn ObjectiveBackend>,
    evaluator: Option<Box<dyn Evaluator>>,
    stack: Option<EvalStack>,
    eval_threads: usize,
    cache_shards: usize,
    actors: usize,
    batched_inference: bool,
    nn_threads: Option<usize>,
    checkpoint_every: Option<u64>,
    checkpoint_path: Option<PathBuf>,
    halt_at: Option<u64>,
    cancel: CancelToken,
}

impl ExperimentBuilder {
    fn new() -> Self {
        ExperimentBuilder {
            n: 8,
            weights: Weights::single(0.5),
            steps: 2000,
            seed: 0,
            base: None,
            task: Arc::new(Adder),
            backend: Arc::new(AnalyticalBackend),
            evaluator: None,
            stack: None,
            eval_threads: 4,
            cache_shards: 16,
            actors: 1,
            batched_inference: true,
            nn_threads: None,
            checkpoint_every: None,
            checkpoint_path: None,
            halt_at: None,
            cancel: CancelToken::new(),
        }
    }

    /// Input width `N`.
    pub fn n(mut self, n: u16) -> Self {
        self.n = n;
        self
    }

    /// The circuit task to optimize (defaults to the [`Adder`]). Built-in
    /// tasks come from [`task::by_name`]; custom implementations of
    /// [`CircuitTask`] plug in the same way.
    pub fn task(mut self, task: Arc<dyn CircuitTask>) -> Self {
        self.task = task;
        self
    }

    /// The objective backend scoring the task (defaults to
    /// [`AnalyticalBackend`]). Ignored when the deprecated
    /// [`ExperimentBuilder::evaluator`] override is set.
    pub fn backend(mut self, backend: Arc<dyn ObjectiveBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// The scalarization weights — one agent per weight.
    pub fn weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Environment steps per agent.
    pub fn steps(mut self, steps: u64) -> Self {
        self.steps = steps;
        self
    }

    /// Master seed; run `i` trains with `seed + i`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A full [`AgentConfig`] template. Overrides `n`/`steps`; the per-run
    /// weight and seed are still applied on top.
    pub fn base_config(mut self, cfg: AgentConfig) -> Self {
        self.base = Some(cfg);
        self
    }

    /// Overrides the reward oracle with a raw [`Evaluator`], bypassing the
    /// task/backend pair. The experiment still wraps it in the shared
    /// sharded cache and [`EvalService`], and the configured task still
    /// drives start states and checkpoints.
    #[deprecated(
        since = "0.4.0",
        note = "use `.task(...)` / `.backend(...)`; custom oracles implement `ObjectiveBackend`"
    )]
    pub fn evaluator(mut self, evaluator: Box<dyn Evaluator>) -> Self {
        self.evaluator = Some(evaluator);
        self
    }

    /// The [`EvalService`] thread budget; agents also fan out over this
    /// many concurrent runs.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn eval_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one eval thread");
        self.eval_threads = threads;
        self
    }

    /// Shard count of the shared evaluation cache.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn cache_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "need at least one cache shard");
        self.cache_shards = shards;
        self
    }

    /// Async actor threads *per agent*. `1` (default) selects the
    /// deterministic, checkpointable [`SerialRunner`]; `> 1` selects
    /// [`AsyncRunner`] (no checkpoint support).
    ///
    /// # Panics
    ///
    /// Panics if `actors == 0`.
    pub fn actors(mut self, actors: usize) -> Self {
        assert!(actors > 0, "need at least one actor");
        self.actors = actors;
        self
    }

    /// Whether async runs route greedy forwards through the cross-actor
    /// inference broker — one fused Q-network forward over every actor's
    /// pending states per service cycle (see
    /// [`AsyncRunner::batched_inference`]). Defaults to `true`; only
    /// meaningful with [`ExperimentBuilder::actors`] `> 1`. Trajectories
    /// are unaffected either way (the fused net is per-sample), only
    /// decision throughput changes.
    pub fn batched_inference(mut self, on: bool) -> Self {
        self.batched_inference = on;
        self
    }

    /// The `nn` compute thread budget (conv GEMM panels; see
    /// `nn::compute::set_threads`). Applied globally when the experiment
    /// runs. Results are bit-identical at every setting — only wall-clock
    /// changes — so checkpoint/resume determinism is unaffected. Defaults
    /// to leaving the global setting (1, or `PREFIXRL_NN_THREADS`) alone.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn nn_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one nn compute thread");
        self.nn_threads = Some(threads);
        self
    }

    /// Capture a checkpoint every `steps` environment steps per agent.
    pub fn checkpoint_every(mut self, steps: u64) -> Self {
        self.checkpoint_every = Some(steps);
        self
    }

    /// Persist sweep checkpoints to this file (atomically rewritten).
    pub fn checkpoint_path(mut self, path: PathBuf) -> Self {
        self.checkpoint_path = Some(path);
        self
    }

    /// Halt every agent at this step after saving a checkpoint — for
    /// interrupt/resume testing and CI smoke runs.
    pub fn halt_at(mut self, step: u64) -> Self {
        self.halt_at = Some(step);
        self
    }

    /// Attach a [`CancelToken`] the caller keeps a clone of: cancelling it
    /// stops every run within one event tick (serial runs checkpoint
    /// first, so the sweep stays resumable), pausing it blocks them
    /// between steps. This is how a resident server cancels a job without
    /// tearing the process down.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Run over an externally owned evaluation stack instead of building a
    /// private one: `cache` is an evaluator binding (typically a
    /// [`crate::task::TaskEvaluator`] for this experiment's task/backend
    /// bound to a shared [`crate::cache::EvalCache`] store) and `service`
    /// the [`EvalService`] wrapping it. This is the multi-job server path:
    /// every concurrent experiment evaluates through one store and one
    /// thread-budget discipline, and [`Experiment::cache_stats`] reports
    /// the *shared* store's aggregate counters. The caller must bind an
    /// evaluator matching `.task(...)`/`.backend(...)` — the discriminant
    /// keying assumes it. Takes precedence over the deprecated
    /// `.evaluator(...)` override.
    pub fn eval_stack(
        mut self,
        cache: Arc<CachedEvaluator<Box<dyn Evaluator>>>,
        service: Arc<EvalService>,
    ) -> Self {
        self.stack = Some((cache, service));
        self
    }

    /// Assembles the experiment: per-run agent configs plus the shared
    /// cache/service evaluation stack over the configured task/backend
    /// (or the externally owned stack from
    /// [`ExperimentBuilder::eval_stack`]).
    pub fn build(self) -> Experiment {
        let (cache, service, backend_label, oracle_overridden) = match self.stack {
            Some((cache, service)) => {
                // Externally owned stack: the caller bound the evaluator,
                // the configured backend is only used for labels and
                // off-reward-path annotations.
                (cache, service, self.backend.backend_id().to_string(), false)
            }
            None => {
                // With the deprecated raw-oracle override, `self.backend`
                // never scores anything: stamp reports with the override's
                // own name and skip backend annotations rather than report
                // the unused default.
                let (inner, backend_label, oracle_overridden): (Box<dyn Evaluator>, String, bool) =
                    match self.evaluator {
                        Some(ev) => {
                            let label = ev.name().to_string();
                            (ev, label, true)
                        }
                        None => (
                            Box::new(TaskEvaluator::new(
                                Arc::clone(&self.task),
                                Arc::clone(&self.backend),
                            )),
                            self.backend.backend_id().to_string(),
                            false,
                        ),
                    };
                let cache = Arc::new(CachedEvaluator::with_config(
                    inner,
                    CacheConfig::with_shards(self.cache_shards),
                ));
                let service = Arc::new(EvalService::new(
                    Arc::clone(&cache) as Arc<dyn Evaluator>,
                    self.eval_threads,
                ));
                (cache, service, backend_label, oracle_overridden)
            }
        };
        let evaluator_name = cache.name().to_string();
        let runs = self
            .weights
            .values()
            .iter()
            .enumerate()
            .map(|(id, &w)| {
                let mut cfg = match &self.base {
                    Some(base) => base.clone(),
                    None => AgentConfig::small(self.n, w as f32, self.steps),
                };
                cfg.env.task = self.task.task_id().to_string();
                cfg.dqn.weight = [w as f32, 1.0 - w as f32];
                cfg.seed = self.seed.wrapping_add(id as u64);
                cfg.qnet.seed = cfg.qnet.seed.wrapping_add(id as u64);
                Run { id, w_area: w, cfg }
            })
            .collect();
        Experiment {
            runs,
            task: self.task,
            backend: self.backend,
            backend_label,
            oracle_overridden,
            cache,
            service,
            evaluator_name,
            parallelism: self.eval_threads,
            actors: self.actors,
            batched_inference: self.batched_inference,
            nn_threads: self.nn_threads,
            checkpoint_every: self.checkpoint_every,
            checkpoint_path: self.checkpoint_path,
            halt_at: self.halt_at,
            cancel: self.cancel,
        }
    }
}

/// Aggregate statistics of the experiment's shared evaluation cache.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CacheStats {
    /// Shard count.
    pub shards: usize,
    /// Total hits (including coalesced in-flight waits).
    pub hits: u64,
    /// Total misses (inner evaluations).
    pub misses: u64,
    /// Entries evicted by capacity bounds.
    pub evictions: u64,
    /// Hit rate in `[0, 1]`.
    pub hit_rate: f64,
    /// Distinct states currently cached.
    pub unique_states: usize,
}

/// A configured multi-agent training session over one shared evaluation
/// stack.
pub struct Experiment {
    runs: Vec<Run>,
    task: Arc<dyn CircuitTask>,
    backend: Arc<dyn ObjectiveBackend>,
    /// What reports stamp as the backend: the backend id, or the
    /// deprecated oracle override's name when one is set.
    backend_label: String,
    /// True when the deprecated raw-oracle override replaced the backend
    /// (annotations are skipped — the backend never scored anything).
    oracle_overridden: bool,
    cache: Arc<CachedEvaluator<Box<dyn Evaluator>>>,
    service: Arc<EvalService>,
    evaluator_name: String,
    parallelism: usize,
    actors: usize,
    batched_inference: bool,
    nn_threads: Option<usize>,
    checkpoint_every: Option<u64>,
    checkpoint_path: Option<PathBuf>,
    halt_at: Option<u64>,
    cancel: CancelToken,
}

impl Experiment {
    /// Starts a builder with analytical defaults (one agent, `w = 0.5`).
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::new()
    }

    /// The configured run handles, in weight order.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// The circuit task this experiment optimizes.
    pub fn task(&self) -> &Arc<dyn CircuitTask> {
        &self.task
    }

    /// The objective backend scoring the task.
    pub fn backend(&self) -> &Arc<dyn ObjectiveBackend> {
        &self.backend
    }

    /// The shared evaluation service (hand this to anything else that
    /// should hit the same cache).
    pub fn service(&self) -> Arc<EvalService> {
        Arc::clone(&self.service)
    }

    /// Current statistics of the shared cache.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            shards: self.cache.shards(),
            hits: self.cache.hits(),
            misses: self.cache.misses(),
            evictions: self.cache.evictions(),
            hit_rate: self.cache.hit_rate(),
            unique_states: self.cache.unique_states(),
        }
    }

    /// Runs every agent, fanning out over the service's thread budget.
    ///
    /// # Errors
    ///
    /// Fails if any run fails (first error wins; remaining runs finish).
    pub fn run(&self, observer: &mut dyn RunObserver) -> Result<ExperimentResult, String> {
        self.run_from(
            SweepCheckpoint::fresh(self.task.task_id(), self.runs.len()),
            observer,
        )
    }

    /// Runs with [`NullObserver`].
    ///
    /// # Errors
    ///
    /// See [`Experiment::run`].
    pub fn run_quiet(&self) -> Result<ExperimentResult, String> {
        self.run(&mut NullObserver)
    }

    /// Resumes from a sweep checkpoint: finished agents are restored from
    /// their records, in-progress agents continue bit-identically from
    /// their checkpoints, pending agents start fresh.
    ///
    /// # Errors
    ///
    /// Fails if the checkpoint does not match this experiment's shape, or
    /// was recorded for a different circuit task — continuing an adder
    /// sweep as a prefix-OR sweep would silently mix oracles.
    pub fn resume(
        &self,
        sweep: SweepCheckpoint,
        observer: &mut dyn RunObserver,
    ) -> Result<ExperimentResult, String> {
        if sweep.task != self.task.task_id() {
            return Err(format!(
                "cannot resume: checkpoint was recorded for task `{}`, experiment \
                 is configured for task `{}`",
                sweep.task,
                self.task.task_id()
            ));
        }
        if sweep.runs.len() != self.runs.len() {
            return Err(format!(
                "checkpoint has {} runs, experiment has {}",
                sweep.runs.len(),
                self.runs.len()
            ));
        }
        for (run, state) in self.runs.iter().zip(&sweep.runs) {
            if let RunState::InProgress(c) = state {
                if c.cfg.env.task != self.task.task_id() {
                    return Err(format!(
                        "run {}: checkpoint task mismatch: trained on `{}`, \
                         experiment task is `{}`",
                        run.id,
                        c.cfg.env.task,
                        self.task.task_id()
                    ));
                }
            }
            let ckpt_w = match state {
                RunState::InProgress(c) => c.cfg.dqn.weight[0] as f64,
                RunState::Done(r) => r.w_area,
                RunState::Pending => continue,
            };
            if (ckpt_w - run.w_area).abs() > 1e-6 {
                return Err(format!(
                    "run {} weight mismatch: checkpoint {ckpt_w}, experiment {}",
                    run.id, run.w_area
                ));
            }
        }
        self.run_from(sweep, observer)
    }

    fn run_from(
        &self,
        sweep: SweepCheckpoint,
        observer: &mut dyn RunObserver,
    ) -> Result<ExperimentResult, String> {
        let t0 = std::time::Instant::now();
        if let Some(t) = self.nn_threads {
            nn::compute::set_threads(t);
        }
        let slots: Vec<Mutex<Option<RunState>>> = sweep
            .runs
            .into_iter()
            .map(|s| Mutex::new(Some(s)))
            .collect();
        // Partial records of runs a cancel stopped without a checkpoint
        // (the async runner cannot snapshot); indexed by run id.
        let partials: Vec<Mutex<Option<RunRecord>>> =
            (0..slots.len()).map(|_| Mutex::new(None)).collect();
        let shared_observer = Mutex::new(observer);
        let persist_lock = Mutex::new(());
        let next = AtomicUsize::new(0);
        let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let runner: Box<dyn Runner> = if self.actors > 1 {
            Box::new(AsyncRunner {
                actors: self.actors,
                batched_inference: self.batched_inference,
            })
        } else {
            Box::new(SerialRunner)
        };
        let workers = self.parallelism.min(self.runs.len()).max(1);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= self.runs.len() {
                        break;
                    }
                    if self.cancel.is_cancelled() {
                        // Don't start queued runs after a cancel; their
                        // slots stay Pending (resumable from scratch).
                        continue;
                    }
                    let resume = match slots[i].lock().as_ref().expect("slot populated") {
                        RunState::Done(_) => continue,
                        RunState::Pending => None,
                        RunState::InProgress(ckpt) => Some((**ckpt).clone()),
                    };
                    let mut local_observer = LockedObserver {
                        inner: &shared_observer,
                    };
                    let mut on_checkpoint = |id: usize, ckpt: Checkpoint| {
                        *slots[id].lock() = Some(RunState::InProgress(Box::new(ckpt)));
                        self.persist(&slots, &persist_lock);
                    };
                    let ctx = RunContext {
                        run_id: i,
                        cfg: &self.runs[i].cfg,
                        task: Arc::clone(&self.task),
                        evaluator: Arc::clone(&self.service) as Arc<dyn Evaluator>,
                        observer: &mut local_observer,
                        checkpoint_every: self.checkpoint_every,
                        on_checkpoint: Some(&mut on_checkpoint),
                        resume,
                        halt_at: self.halt_at,
                        cancel: self.cancel.clone(),
                    };
                    match runner.run(ctx) {
                        Ok(outcome) => {
                            if outcome.completed {
                                *slots[i].lock() = Some(RunState::Done(outcome.record));
                                self.persist(&slots, &persist_lock);
                            } else if matches!(
                                slots[i].lock().as_ref().expect("slot populated"),
                                RunState::Pending
                            ) {
                                // Stopped without ever checkpointing (an
                                // async cancel): keep the partial record
                                // so its designs still reach the report.
                                *partials[i].lock() = Some(outcome.record);
                            }
                            // A halted/cancelled serial run already
                            // persisted via on_checkpoint and stays
                            // InProgress.
                        }
                        Err(e) => errors.lock().push(format!("run {i}: {e}")),
                    }
                });
            }
        });
        {
            let errors = errors.lock();
            if !errors.is_empty() {
                return Err(errors.join("; "));
            }
        }
        let mut records = Vec::with_capacity(self.runs.len());
        let mut completed = true;
        for (i, slot) in slots.iter().enumerate() {
            match slot.lock().take().expect("slot populated") {
                RunState::Done(mut record) => {
                    // Report the configured f64 weight, not its f32
                    // round-trip through DqnConfig.
                    record.w_area = self.runs[i].w_area;
                    records.push(record);
                }
                RunState::InProgress(ckpt) => {
                    completed = false;
                    let mut record = RunRecord::from_checkpoint(i, &ckpt);
                    record.w_area = self.runs[i].w_area;
                    records.push(record);
                }
                RunState::Pending => {
                    completed = false;
                    let partial = partials[i].lock().take();
                    records.push(partial.unwrap_or(RunRecord {
                        run: i,
                        w_area: self.runs[i].w_area,
                        steps: 0,
                        designs: Vec::new(),
                        losses: Vec::new(),
                        episode_returns: Vec::new(),
                    }));
                }
            }
        }
        // Off-reward-path annotations (e.g. switching power) for the
        // merged frontier, when the backend produces them. Indexed in the
        // frontier's (deterministic, strictly-delay-increasing) iteration
        // order, which `merged_front()` reproduces from the same records.
        let frontier_power: Option<Vec<f64>> = if self.oracle_overridden {
            None
        } else {
            let merged: ParetoFront<PrefixGraph> = records
                .iter()
                .flat_map(|r| r.designs.iter().map(|(g, p)| (*p, g.clone())))
                .collect();
            merged
                .iter()
                .map(|(_, g)| self.backend.annotate(self.task.as_ref(), g))
                .collect()
        };
        Ok(ExperimentResult {
            n: self.runs[0].cfg.env.n,
            task: self.task.task_id().to_string(),
            backend: self.backend_label.clone(),
            evaluator: self.evaluator_name.clone(),
            steps_per_agent: self.runs[0].cfg.total_steps,
            actors_per_agent: self.actors,
            completed,
            records,
            frontier_power,
            cache: self.cache_stats(),
            elapsed_sec: t0.elapsed().as_secs_f64(),
        })
    }

    /// Atomically rewrites the sweep checkpoint file, if one is configured.
    ///
    /// Each slot is serialized to a value tree under its own lock (no
    /// intermediate `RunState` clone — in-progress slots embed full replay
    /// buffers, so cloning them would double the dominant cost); the file
    /// is still one atomic whole-sweep snapshot, with each slot internally
    /// consistent.
    fn persist(&self, slots: &[Mutex<Option<RunState>>], persist_lock: &Mutex<()>) {
        let Some(path) = &self.checkpoint_path else {
            return;
        };
        let _guard = persist_lock.lock();
        let runs: Vec<serde::Value> = slots
            .iter()
            .map(|s| s.lock().as_ref().expect("slot populated").to_value())
            .collect();
        let sweep = serde::Value::Object(vec![
            ("version".to_string(), Checkpoint::FORMAT_VERSION.to_value()),
            ("task".to_string(), self.task.task_id().to_value()),
            ("runs".to_string(), serde::Value::Array(runs)),
        ]);
        let json = serde_json::to_string_pretty(&sweep).expect("infallible");
        if let Err(e) = crate::checkpoint::write_atomic(path, &json) {
            // Checkpointing is best-effort durability; training goes on.
            eprintln!("warning: sweep checkpoint write failed: {e}");
        }
    }
}

/// Per-thread adapter funnelling events into the sweep's shared observer.
struct LockedObserver<'a, 'b> {
    inner: &'a Mutex<&'b mut dyn RunObserver>,
}

impl RunObserver for LockedObserver<'_, '_> {
    fn on_event(&mut self, run: usize, event: &Event) {
        self.inner.lock().on_event(run, event);
    }
}

// ------------------------------------------------------------------ result

/// Everything a (possibly multi-agent) experiment produced.
pub struct ExperimentResult {
    /// Input width.
    pub n: u16,
    /// The circuit task's stable id (e.g. `"adder"`).
    pub task: String,
    /// The objective backend's stable id (e.g. `"analytical"`).
    pub backend: String,
    /// Inner evaluator name (`task/backend` unless overridden).
    pub evaluator: String,
    /// Step budget per agent.
    pub steps_per_agent: u64,
    /// Async actor threads per agent (1 = deterministic serial runner).
    pub actors_per_agent: usize,
    /// Whether every agent exhausted its budget (false after `halt_at`).
    pub completed: bool,
    /// Per-agent records, in run order.
    pub records: Vec<RunRecord>,
    /// Off-reward-path switching-power annotations (µW) for the merged
    /// frontier, in [`ExperimentResult::merged_front`] iteration order;
    /// `None` when the backend does not annotate.
    pub frontier_power: Option<Vec<f64>>,
    /// Shared-cache statistics at completion.
    pub cache: CacheStats,
    /// Wall-clock seconds of this process's portion of the work.
    pub elapsed_sec: f64,
}

impl ExperimentResult {
    /// Total environment steps across all agents.
    pub fn total_steps(&self) -> u64 {
        self.records.iter().map(|r| r.steps).sum()
    }

    /// The combined Pareto front over every agent's design pool — the
    /// paper's Fig. 4 construction.
    pub fn merged_front(&self) -> ParetoFront<PrefixGraph> {
        self.records
            .iter()
            .flat_map(|r| r.designs.iter().map(|(g, p)| (*p, g.clone())))
            .collect()
    }

    /// The `prefixrl.experiment.v1` JSON report shared by `prefixrl train`
    /// and `prefixrl sweep` (schema documented in DESIGN.md §10). With
    /// `include_graphs`, merged-frontier entries embed the full prefix
    /// graphs for downstream tooling.
    pub fn to_json(&self, include_graphs: bool) -> serde_json::Value {
        let frontier_json = |front: &ParetoFront<PrefixGraph>, graphs: bool| {
            serde_json::Value::Array(
                front
                    .iter()
                    .map(|(p, g)| {
                        let mut entry = serde_json::json!({
                            "area": p.area,
                            "delay": p.delay,
                            "size": g.size(),
                            "depth": g.depth(),
                        });
                        if graphs {
                            if let serde_json::Value::Object(entries) = &mut entry {
                                entries.push(("graph".to_string(), serde::Serialize::to_value(g)));
                            }
                        }
                        entry
                    })
                    .collect(),
            )
        };
        let total_requests: u64 = self.cache.hits + self.cache.misses;
        // The merged frontier, with per-point power annotations when the
        // backend produced them (index-aligned with merged_front order).
        let mut merged_json = frontier_json(&self.merged_front(), include_graphs);
        if let (serde_json::Value::Array(items), Some(powers)) =
            (&mut merged_json, &self.frontier_power)
        {
            // Annotations are index-aligned with merged_front order; a
            // length mismatch would mean silent mispairing, so drop them
            // entirely rather than zip-truncate.
            if items.len() == powers.len() {
                for (item, p) in items.iter_mut().zip(powers) {
                    if let serde_json::Value::Object(entries) = item {
                        entries.push(("power_uw".to_string(), serde::Serialize::to_value(p)));
                    }
                }
            }
        }
        let agents: Vec<serde_json::Value> = self
            .records
            .iter()
            .map(|r| {
                let front = r.front();
                // The serial runner's evaluation count is exact: one per
                // step, one per episode reset, one initial state. Async
                // actors run several environments with step-claim
                // overshoot, so no exact per-agent count exists there.
                let eval_requests = (self.actors_per_agent == 1)
                    .then(|| r.steps + r.episode_returns.len() as u64 + 1);
                serde_json::json!({
                    "run": r.run,
                    "w_area": r.w_area,
                    "steps": r.steps,
                    "designs": r.designs.len(),
                    "grad_steps": r.losses.len(),
                    "episodes": r.episode_returns.len(),
                    "eval_requests": eval_requests,
                    "frontier_size": front.len(),
                    "frontier": frontier_json(&front, false),
                })
            })
            .collect();
        serde_json::json!({
            "schema": "prefixrl.experiment.v1",
            "n": self.n,
            "task": self.task,
            "backend": self.backend,
            "evaluator": self.evaluator,
            "agents_count": self.records.len(),
            "steps_per_agent": self.steps_per_agent,
            "total_steps": self.total_steps(),
            "completed": self.completed,
            "elapsed_sec": self.elapsed_sec,
            "steps_per_sec": self.total_steps() as f64 / self.elapsed_sec.max(1e-9),
            "agents": serde_json::Value::Array(agents),
            "merged_frontier": merged_json,
            "cache": {
                "shards": self.cache.shards,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "hit_rate": self.cache.hit_rate,
                "unique_states": self.cache.unique_states,
                "requests": total_requests,
            },
        })
    }
}

// The async runner lives in `parallel.rs` (thread topology) but is part of
// this module's public surface.
pub use crate::parallel::AsyncRunner;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_linspace_matches_paper_shape() {
        let w = Weights::linspace(0.10, 0.99, 15);
        assert_eq!(w.len(), 15);
        assert!((w.values()[0] - 0.10).abs() < 1e-12);
        assert!((w.values()[14] - 0.99).abs() < 1e-12);
        for pair in w.values().windows(2) {
            assert!(pair[0] < pair[1], "weights must increase");
        }
        assert_eq!(Weights::linspace(0.3, 0.9, 1).values(), &[0.3]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn weights_reject_out_of_range() {
        Weights::list(vec![0.5, 1.5]);
    }

    #[test]
    fn builder_configures_runs() {
        let exp = Experiment::builder()
            .n(8)
            .weights(Weights::linspace(0.2, 0.8, 3))
            .steps(100)
            .seed(7)
            .eval_threads(2)
            .build();
        let runs = exp.runs();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].cfg.seed, 7);
        assert_eq!(runs[2].cfg.seed, 9);
        assert!((runs[1].w_area - 0.5).abs() < 1e-12);
        assert_eq!(runs[1].cfg.dqn.weight[0], 0.5);
        assert_eq!(runs[0].cfg.total_steps, 100);
    }

    #[test]
    fn experiment_shares_cache_across_agents() {
        let exp = Experiment::builder()
            .n(8)
            .weights(Weights::linspace(0.2, 0.8, 3))
            .base_config(AgentConfig::tiny(8, 0.5))
            .eval_threads(3)
            .build();
        let result = exp.run_quiet().unwrap();
        assert!(result.completed);
        assert_eq!(result.records.len(), 3);
        // All agents reset into the same two start states, so the shared
        // cache must coalesce them.
        assert!(result.cache.hits > 0, "agents never shared the cache");
        assert!(!result.merged_front().is_empty());
    }

    #[test]
    fn channel_observer_streams_events() {
        let exp = Experiment::builder()
            .n(8)
            .weights(Weights::single(0.5))
            .base_config(AgentConfig::tiny(8, 0.5))
            .build();
        let (mut obs, rx) = ChannelObserver::bounded(100_000);
        let result = exp.run(&mut obs).unwrap();
        drop(obs);
        let events: Vec<(usize, Event)> = std::iter::from_fn(|| rx.try_recv().ok()).collect();
        let steps = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::Step { .. }))
            .count() as u64;
        assert_eq!(steps, result.records[0].steps);
        let grads = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::GradStep { .. }))
            .count();
        assert_eq!(grads, result.records[0].losses.len());
        let designs = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::DesignFound { .. }))
            .count();
        assert_eq!(designs, result.records[0].designs.len());
    }

    #[test]
    fn result_json_has_schema_fields() {
        let exp = Experiment::builder()
            .n(8)
            .weights(Weights::linspace(0.3, 0.7, 2))
            .base_config(AgentConfig::tiny(8, 0.5))
            .build();
        let result = exp.run_quiet().unwrap();
        let json = result.to_json(false);
        assert_eq!(
            json.get("schema").unwrap(),
            &serde_json::Value::String("prefixrl.experiment.v1".into())
        );
        assert_eq!(json.get("agents").unwrap().as_array().unwrap().len(), 2);
        assert!(json.get("merged_frontier").is_some());
        assert!(json.get("cache").unwrap().get("hit_rate").is_some());
        assert_eq!(
            json.get("task").unwrap(),
            &serde_json::Value::String("adder".into())
        );
        assert_eq!(
            json.get("backend").unwrap(),
            &serde_json::Value::String("analytical".into())
        );
    }

    #[test]
    fn builder_task_threads_into_run_configs() {
        let exp = Experiment::builder()
            .n(8)
            .task(task::by_name("incrementer").unwrap())
            .weights(Weights::linspace(0.3, 0.7, 2))
            .base_config(AgentConfig::tiny(8, 0.5))
            .build();
        assert_eq!(exp.task().task_id(), "incrementer");
        for run in exp.runs() {
            assert_eq!(run.cfg.env.task, "incrementer");
        }
    }

    #[test]
    fn weights_reject_duplicates_loudly() {
        let err = Weights::try_list(vec![0.3, 0.5, 0.3]).unwrap_err();
        assert!(err.contains("duplicate weight"), "{err}");
        assert!(err.contains("positions 0 and 2"), "{err}");
    }

    #[test]
    #[should_panic(expected = "duplicate weight")]
    fn weights_list_panics_on_duplicates() {
        Weights::list(vec![0.5, 0.5]);
    }

    #[test]
    fn linspace_collapses_float_equal_points_at_tiny_ranges() {
        // Every point of this range rounds to the same f64: one agent.
        let w = Weights::linspace(0.5, 0.5 + 1e-18, 3);
        assert_eq!(w.values(), &[0.5]);
        // A representable range keeps its distinct points, endpoints
        // included.
        let w = Weights::linspace(0.5, 0.5 + 1e-12, 3);
        assert!(w.len() >= 2, "endpoints must survive");
        assert_eq!(w.values()[0], 0.5);
        assert_eq!(*w.values().last().unwrap(), 0.5 + 1e-12);
        for pair in w.values().windows(2) {
            assert!(pair[0] < pair[1], "collapse must leave strict order");
        }
    }

    #[test]
    fn cancel_token_stops_serial_run_within_one_tick() {
        let token = CancelToken::new();
        let canceller = token.clone();
        let exp = Experiment::builder()
            .n(8)
            .weights(Weights::single(0.5))
            .base_config(AgentConfig::tiny(8, 0.5))
            .cancel_token(token)
            .build();
        let mut obs = CallbackObserver::new(move |_, e| {
            if let Event::Step { step, .. } = e {
                if *step >= 50 {
                    canceller.cancel();
                }
            }
        });
        let result = exp.run(&mut obs).unwrap();
        assert!(!result.completed);
        // The token fired during step 50; the runner polls before the
        // next step, so exactly 51 steps ran.
        assert_eq!(result.records[0].steps, 51, "cancel not within one tick");
        assert!(!result.records[0].designs.is_empty());
    }

    #[test]
    fn cancelled_sweep_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!("prefixrl-cancel-{}", std::process::id()));
        let path = dir.join("cancelled.sweep.json");
        let base = AgentConfig::tiny(8, 0.5);
        let reference = Experiment::builder()
            .n(8)
            .weights(Weights::single(0.5))
            .base_config(base.clone())
            .build()
            .run_quiet()
            .unwrap();
        let token = CancelToken::new();
        let canceller = token.clone();
        let halted = Experiment::builder()
            .n(8)
            .weights(Weights::single(0.5))
            .base_config(base.clone())
            .cancel_token(token)
            .checkpoint_path(path.clone())
            .build()
            .run(&mut CallbackObserver::new(move |_, e| {
                if let Event::Step { step, .. } = e {
                    if *step >= 80 {
                        canceller.cancel();
                    }
                }
            }))
            .unwrap();
        assert!(!halted.completed);
        let sweep = SweepCheckpoint::load(&path).unwrap();
        let resumed = Experiment::builder()
            .n(8)
            .weights(Weights::single(0.5))
            .base_config(base)
            .build()
            .resume(sweep, &mut NullObserver)
            .unwrap();
        assert!(resumed.completed);
        assert_eq!(resumed.records[0].losses, reference.records[0].losses);
        assert_eq!(
            resumed.records[0].designs.len(),
            reference.records[0].designs.len()
        );
        for ((ga, pa), (gb, pb)) in resumed.records[0]
            .designs
            .iter()
            .zip(&reference.records[0].designs)
        {
            assert_eq!(ga.canonical_key(), gb.canonical_key());
            assert_eq!(pa, pb);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pause_blocks_and_resume_continues() {
        let token = CancelToken::new();
        token.pause();
        let handle = {
            let token = token.clone();
            std::thread::spawn(move || {
                Experiment::builder()
                    .n(8)
                    .weights(Weights::single(0.5))
                    .base_config(AgentConfig::tiny(8, 0.5))
                    .cancel_token(token)
                    .build()
                    .run_quiet()
                    .unwrap()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(150));
        assert!(!handle.is_finished(), "paused run must not progress");
        token.resume();
        let result = handle.join().unwrap();
        assert!(result.completed);
        assert_eq!(result.records[0].steps, 300);
    }

    #[test]
    fn external_eval_stack_is_shared_across_experiments() {
        use crate::cache::EvalCache;
        let store = Arc::new(EvalCache::new(CacheConfig::with_shards(4)));
        let make = || {
            let inner: Box<dyn Evaluator> = Box::new(TaskEvaluator::analytical(Adder));
            let cache = Arc::new(CachedEvaluator::with_store(inner, Arc::clone(&store)));
            let service = Arc::new(EvalService::new(
                Arc::clone(&cache) as Arc<dyn Evaluator>,
                2,
            ));
            Experiment::builder()
                .n(8)
                .weights(Weights::single(0.5))
                .base_config(AgentConfig::tiny(8, 0.5))
                .eval_stack(cache, service)
                .build()
        };
        let first = make().run_quiet().unwrap();
        assert!(first.completed);
        let misses_after_first = store.misses();
        assert!(misses_after_first > 0);
        // A second, identical experiment over the same external stack
        // replays the same deterministic states: the shared store must
        // serve it entirely from cache.
        let second = make().run_quiet().unwrap();
        assert!(second.completed);
        assert_eq!(
            store.misses(),
            misses_after_first,
            "second run must be all hits through the shared store"
        );
        assert_eq!(second.cache.misses, store.misses());
    }

    #[test]
    fn resume_rejects_task_mismatch() {
        let exp = Experiment::builder()
            .n(8)
            .task(task::by_name("prefix-or").unwrap())
            .base_config(AgentConfig::tiny(8, 0.5))
            .build();
        let sweep = SweepCheckpoint::fresh("adder", 1);
        let err = match exp.resume(sweep, &mut NullObserver) {
            Err(e) => e,
            Ok(_) => panic!("task mismatch must be rejected"),
        };
        assert!(err.contains("task `adder`"), "{err}");
        assert!(err.contains("task `prefix-or`"), "{err}");
    }
}
