//! The PrefixRL serial training loop.
//!
//! One agent is trained per scalarization weight `w`; the paper trains 15
//! agents with `w_area ∈ [0.10, 0.99]` and assembles the Pareto frontier
//! from the designs they discover. Every state visited during training is
//! harvested into the design pool (with its evaluated objectives), which is
//! what the figure harnesses bin into fronts.
//!
//! The loop itself lives in [`TrainLoop`], a resumable state machine: it
//! steps one environment transition at a time, streams
//! [`crate::experiment::Event`]s to a [`crate::experiment::RunObserver`],
//! and can snapshot its complete state into a
//! [`crate::checkpoint::Checkpoint`] (and be rebuilt from one) such that a
//! resumed run is bit-identical to an uninterrupted one. The historical
//! free functions [`train`] / [`train_with_agent`] / [`greedy_rollout`]
//! remain as thin deprecated wrappers; new code should go through
//! [`crate::experiment::Experiment`].

use crate::checkpoint::Checkpoint;
use crate::env::{EnvConfig, PrefixEnv};
use crate::evaluator::{Evaluator, ObjectivePoint};
use crate::experiment::{Event, NullObserver, RunObserver};
use crate::pareto::ParetoFront;
use crate::qnet::{PrefixQNet, QNetConfig};
use crate::task::{self, CircuitTask};
use prefix_graph::PrefixGraph;
use rand::prelude::*;
use rl::{DoubleDqn, DqnConfig, EpsilonSchedule, ReplayBuffer, Transition};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Full configuration of one PrefixRL agent.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Environment settings.
    pub env: EnvConfig,
    /// Q-network settings.
    pub qnet: QNetConfig,
    /// Double-DQN settings (includes the scalarization weight).
    pub dqn: DqnConfig,
    /// Total environment steps.
    pub total_steps: u64,
    /// Replay buffer capacity (paper: 4×10⁵).
    pub replay_capacity: usize,
    /// Exploration start ε.
    pub eps_start: f64,
    /// Exploration end ε (annealed to ~0 as in the paper).
    pub eps_end: f64,
    /// Steps over which ε anneals.
    pub eps_decay_steps: u64,
    /// Gradient steps per environment step.
    pub train_every: u64,
    /// Environments each async actor steps in lockstep, batching its
    /// Q-network forwards (the serial path always uses one).
    pub envs_per_actor: usize,
    /// Master seed.
    pub seed: u64,
}

impl AgentConfig {
    /// A minimal configuration for unit tests (analytical reward scale).
    pub fn tiny(n: u16, w_area: f32) -> Self {
        AgentConfig {
            env: EnvConfig::analytical(n),
            qnet: QNetConfig::tiny(n),
            dqn: DqnConfig {
                batch_size: 16,
                min_replay: 64,
                ..DqnConfig::paper(w_area)
            },
            total_steps: 300,
            replay_capacity: 4_000,
            eps_start: 1.0,
            eps_end: 0.05,
            eps_decay_steps: 200,
            train_every: 1,
            envs_per_actor: 2,
            seed: 0,
        }
    }

    /// A CPU-tractable experiment configuration.
    pub fn small(n: u16, w_area: f32, total_steps: u64) -> Self {
        AgentConfig {
            env: EnvConfig::analytical(n),
            qnet: QNetConfig::small(n),
            dqn: DqnConfig {
                batch_size: 16,
                min_replay: 200,
                ..DqnConfig::paper(w_area)
            },
            total_steps,
            replay_capacity: 20_000,
            eps_start: 1.0,
            eps_end: 0.02,
            eps_decay_steps: total_steps * 3 / 4,
            train_every: 1,
            envs_per_actor: 2,
            seed: 0,
        }
    }

    /// The paper's full-scale configuration (5×10⁵ steps, B=32, C=256,
    /// replay 4×10⁵, Adam 4e-5) — constructible but sized for a cluster.
    pub fn paper(n: u16, w_area: f32) -> Self {
        AgentConfig {
            env: EnvConfig::synthesis(n),
            qnet: QNetConfig::paper(n),
            dqn: DqnConfig::paper(w_area),
            total_steps: 500_000,
            replay_capacity: 400_000,
            eps_start: 1.0,
            eps_end: 0.0,
            eps_decay_steps: 400_000,
            train_every: 1,
            envs_per_actor: 4,
            seed: 0,
        }
    }
}

/// Everything a training run produces.
pub struct TrainResult {
    /// Every distinct design visited, with its evaluated objectives, in
    /// deterministic (canonical-key) order for the serial path.
    pub designs: Vec<(PrefixGraph, ObjectivePoint)>,
    /// Per-gradient-step losses.
    pub losses: Vec<f32>,
    /// Scalarized episode returns (training diagnostic).
    pub episode_returns: Vec<f64>,
    /// Environment steps executed.
    pub steps: u64,
}

impl TrainResult {
    /// The Pareto front over all visited designs.
    pub fn front(&self) -> ParetoFront<PrefixGraph> {
        self.designs.iter().map(|(g, p)| (*p, g.clone())).collect()
    }

    /// The design minimizing the scalarized objective.
    pub fn best_scalarized(
        &self,
        w_area: f64,
        c_area: f64,
        c_delay: f64,
    ) -> Option<&(PrefixGraph, ObjectivePoint)> {
        self.designs.iter().min_by(|a, b| {
            let cost =
                |p: &ObjectivePoint| w_area * c_area * p.area + (1.0 - w_area) * c_delay * p.delay;
            cost(&a.1).total_cmp(&cost(&b.1))
        })
    }
}

/// The serial PrefixRL training loop as a resumable state machine.
///
/// Owns everything one agent's run needs — environment, Double-DQN, replay
/// buffer, ε-schedule position, RNG, and the harvested design pool — and
/// advances one environment step per [`TrainLoop::step_once`] call. The
/// whole state snapshots into a [`Checkpoint`] between steps, and
/// [`TrainLoop::from_checkpoint`] rebuilds it such that the continued run
/// is bit-identical to one that never stopped.
pub struct TrainLoop {
    cfg: AgentConfig,
    env: PrefixEnv,
    dqn: DoubleDqn<PrefixQNet>,
    replay: ReplayBuffer,
    schedule: EpsilonSchedule,
    rng: StdRng,
    /// Canonical key → design; `BTreeMap` so result order is deterministic.
    designs: BTreeMap<Vec<u64>, (PrefixGraph, ObjectivePoint)>,
    losses: Vec<f32>,
    episode_returns: Vec<f64>,
    episode_return: f64,
    step: u64,
    /// Set until the start state has been announced to an observer (the
    /// constructor has none to emit `DesignFound` to).
    pending_initial_record: bool,
}

impl TrainLoop {
    /// Initializes a fresh run: seeds the RNG, builds online/target
    /// networks, resets the environment, and records the start state. The
    /// circuit task is resolved from `cfg.env.task` through the built-in
    /// registry (panics on an unknown id); custom tasks go through
    /// [`TrainLoop::with_task`].
    pub fn new(cfg: &AgentConfig, evaluator: Arc<dyn Evaluator>) -> Self {
        Self::with_env(cfg, PrefixEnv::new(cfg.env.clone(), evaluator))
    }

    /// Initializes a fresh run over an explicit (possibly custom) circuit
    /// task; `cfg.env.task` is overwritten with the task's id so
    /// checkpoints record it.
    pub fn with_task(
        cfg: &AgentConfig,
        task: Arc<dyn CircuitTask>,
        evaluator: Arc<dyn Evaluator>,
    ) -> Self {
        Self::with_env(cfg, PrefixEnv::with_task(cfg.env.clone(), task, evaluator))
    }

    fn with_env(cfg: &AgentConfig, mut env: PrefixEnv) -> Self {
        let mut cfg = cfg.clone();
        // The environment resolved (and possibly rewrote) the task id;
        // keep the checkpointed config in sync with it.
        cfg.env = env.config().clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let online = PrefixQNet::new(&cfg.qnet);
        let target = PrefixQNet::new(&QNetConfig {
            seed: cfg.qnet.seed ^ 0x5eed,
            ..cfg.qnet.clone()
        });
        let dqn = DoubleDqn::new(online, target, cfg.dqn.clone());
        let replay = ReplayBuffer::new(cfg.replay_capacity);
        let schedule = EpsilonSchedule::linear(cfg.eps_start, cfg.eps_end, cfg.eps_decay_steps);
        env.reset(&mut rng);
        TrainLoop {
            cfg,
            env,
            dqn,
            replay,
            schedule,
            rng,
            designs: BTreeMap::new(),
            losses: Vec::new(),
            episode_returns: Vec::new(),
            episode_return: 0.0,
            step: 0,
            pending_initial_record: true,
        }
    }

    /// Rebuilds a loop from a [`Checkpoint`] so that continuing produces
    /// bit-identical losses and designs to the uninterrupted run. The
    /// checkpoint's recorded task is resolved through the built-in
    /// registry.
    ///
    /// # Errors
    ///
    /// Fails if the checkpoint's task id is not registered, or on
    /// architecture mismatch between the checkpoint and the network built
    /// from its own config (corrupt checkpoint).
    pub fn from_checkpoint(
        ckpt: &Checkpoint,
        evaluator: Arc<dyn Evaluator>,
    ) -> Result<Self, String> {
        let task = task::by_name(&ckpt.cfg.env.task).ok_or_else(|| {
            format!(
                "checkpoint records unknown task `{}` (registered: {:?})",
                ckpt.cfg.env.task,
                task::TASK_NAMES
            )
        })?;
        Self::from_checkpoint_with_task(ckpt, task, evaluator)
    }

    /// Rebuilds a loop from a [`Checkpoint`] over an explicit task,
    /// refusing a task mismatch — resuming an adder checkpoint as a
    /// prefix-OR run would silently train on the wrong rewards.
    ///
    /// # Errors
    ///
    /// Fails if `task` does not match the checkpoint's recorded task, or
    /// on architecture mismatch (corrupt checkpoint).
    pub fn from_checkpoint_with_task(
        ckpt: &Checkpoint,
        task: Arc<dyn CircuitTask>,
        evaluator: Arc<dyn Evaluator>,
    ) -> Result<Self, String> {
        if task.task_id() != ckpt.cfg.env.task {
            return Err(format!(
                "checkpoint task mismatch: checkpoint was trained on task `{}`, \
                 resume requested task `{}`",
                ckpt.cfg.env.task,
                task.task_id()
            ));
        }
        let cfg = ckpt.cfg.clone();
        let mut env = PrefixEnv::with_task(cfg.env.clone(), task, evaluator);
        env.restore(ckpt.env_graph.clone(), ckpt.env_steps as usize);
        let online = PrefixQNet::new(&cfg.qnet);
        let target = PrefixQNet::new(&QNetConfig {
            seed: cfg.qnet.seed ^ 0x5eed,
            ..cfg.qnet.clone()
        });
        let mut dqn = DoubleDqn::new(online, target, cfg.dqn.clone());
        dqn.load_state_snapshot(&ckpt.trainer)?;
        dqn.online_mut().load_opt_state(&ckpt.opt)?;
        let schedule = EpsilonSchedule::linear(cfg.eps_start, cfg.eps_end, cfg.eps_decay_steps);
        let mut designs = BTreeMap::new();
        for (g, p) in &ckpt.designs {
            designs.insert(g.canonical_key(), (g.clone(), *p));
        }
        Ok(TrainLoop {
            cfg,
            env,
            dqn,
            replay: ckpt.replay.clone(),
            schedule,
            rng: StdRng::from_state(ckpt.rng),
            designs,
            losses: ckpt.losses.clone(),
            episode_returns: ckpt.episode_returns.clone(),
            episode_return: ckpt.episode_return,
            step: ckpt.step,
            pending_initial_record: false,
        })
    }

    /// Snapshots the complete loop state between environment steps.
    pub fn checkpoint(&mut self) -> Checkpoint {
        if self.pending_initial_record {
            // Checkpointing before any step: fold the start state into the
            // pool silently so the snapshot is self-contained.
            Self::record(&mut self.designs, &self.env);
            self.pending_initial_record = false;
        }
        let trainer = self.dqn.save_state();
        let net_digest = nn::serialize::digest(&trainer.online);
        Checkpoint {
            version: Checkpoint::FORMAT_VERSION,
            cfg: self.cfg.clone(),
            step: self.step,
            trainer,
            opt: self.dqn.online_mut().opt_state(),
            replay: self.replay.clone(),
            rng: self.rng.state(),
            env_graph: self.env.graph().clone(),
            env_steps: self.env.steps() as u64,
            episode_return: self.episode_return,
            designs: self.designs.values().cloned().collect(),
            losses: self.losses.clone(),
            episode_returns: self.episode_returns.clone(),
            net_digest,
        }
    }

    /// Convenience: trains a fresh agent to completion unobserved — the
    /// one-shot equivalent of the old `train` free function. Sweeps and
    /// observed runs should go through [`crate::experiment::Experiment`].
    pub fn run(cfg: &AgentConfig, evaluator: Arc<dyn Evaluator>) -> TrainResult {
        let mut lp = TrainLoop::new(cfg, evaluator);
        lp.run_to_completion(0, &mut NullObserver);
        lp.into_parts().1
    }

    /// Environment steps executed so far.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Whether the step budget is exhausted.
    pub fn is_done(&self) -> bool {
        self.step >= self.cfg.total_steps
    }

    /// The agent configuration this loop runs.
    pub fn config(&self) -> &AgentConfig {
        &self.cfg
    }

    /// Executes one environment step (action selection, transition,
    /// harvesting, replay push, gradient step, episode bookkeeping),
    /// streaming events to `observer` under run id `run`. Returns `false`
    /// once the step budget is exhausted (no step executed).
    pub fn step_once(&mut self, run: usize, observer: &mut dyn RunObserver) -> bool {
        if self.is_done() {
            return false;
        }
        if self.pending_initial_record {
            self.record_observed(run, observer);
            self.pending_initial_record = false;
        }
        let eps = self.schedule.value(self.step);
        let state = self.env.features();
        let mask = self.env.action_mask();
        let action = self
            .dqn
            .act(&state, &mask, eps, &mut self.rng)
            .expect("prefix env always has a legal action");
        let outcome = self.env.step_flat(action);
        self.record_observed(run, observer);
        let w = self.cfg.dqn.weight;
        let scalarized = (w[0] * outcome.reward[0] + w[1] * outcome.reward[1]) as f64;
        self.episode_return += scalarized;
        observer.on_event(
            run,
            &Event::Step {
                step: self.step,
                epsilon: eps,
                reward: outcome.reward,
            },
        );
        self.replay.push(Transition {
            state,
            action,
            reward: outcome.reward,
            next_state: self.env.features(),
            next_mask: self.env.action_mask(),
            done: false, // no terminal states; truncation bootstraps
        });
        if self.cfg.train_every > 0 && self.step.is_multiple_of(self.cfg.train_every) {
            if let Some(loss) = self.dqn.train_step(&self.replay, &mut self.rng) {
                self.losses.push(loss);
                observer.on_event(
                    run,
                    &Event::GradStep {
                        grad_step: self.losses.len() as u64,
                        loss,
                    },
                );
            }
        }
        if outcome.truncated {
            self.episode_returns.push(self.episode_return);
            observer.on_event(
                run,
                &Event::EpisodeEnd {
                    episode: self.episode_returns.len(),
                    scalarized_return: self.episode_return,
                },
            );
            self.episode_return = 0.0;
            self.env.reset(&mut self.rng);
            self.record_observed(run, observer);
        }
        self.step += 1;
        true
    }

    /// Runs until the step budget is exhausted.
    pub fn run_to_completion(&mut self, run: usize, observer: &mut dyn RunObserver) {
        while self.step_once(run, observer) {}
    }

    /// Runs until the step budget is exhausted or `cancel` fires, polling
    /// the token between environment steps (a pause blocks right there
    /// with no state lost). Returns `true` when the budget was exhausted,
    /// `false` when stopped by cancellation — in which case the loop is
    /// intact mid-run and [`TrainLoop::checkpoint`] captures it.
    pub fn run_while(
        &mut self,
        run: usize,
        observer: &mut dyn RunObserver,
        cancel: &crate::experiment::CancelToken,
    ) -> bool {
        loop {
            if cancel.wait_while_paused() {
                return false;
            }
            if !self.step_once(run, observer) {
                return true;
            }
        }
    }

    /// Consumes the loop, yielding the trainer and the run record.
    pub fn into_parts(mut self) -> (DoubleDqn<PrefixQNet>, TrainResult) {
        if self.pending_initial_record {
            Self::record(&mut self.designs, &self.env);
        }
        let result = TrainResult {
            designs: self.designs.into_values().collect(),
            losses: self.losses,
            episode_returns: self.episode_returns,
            steps: self.step,
        };
        (self.dqn, result)
    }

    fn record(
        designs: &mut BTreeMap<Vec<u64>, (PrefixGraph, ObjectivePoint)>,
        env: &PrefixEnv,
    ) -> bool {
        let key = env.graph().canonical_key();
        if designs.contains_key(&key) {
            return false;
        }
        designs.insert(key, (env.graph().clone(), env.metrics()));
        true
    }

    fn record_observed(&mut self, run: usize, observer: &mut dyn RunObserver) {
        if Self::record(&mut self.designs, &self.env) {
            observer.on_event(
                run,
                &Event::DesignFound {
                    step: self.step,
                    point: self.env.metrics(),
                    size: self.env.graph().size(),
                    depth: self.env.graph().depth() as usize,
                },
            );
        }
    }
}

/// Trains one PrefixRL agent, returning the trainer and the run record.
#[deprecated(
    since = "0.2.0",
    note = "use `experiment::Experiment::builder()` (or `TrainLoop` directly) instead"
)]
pub fn train_with_agent(
    cfg: &AgentConfig,
    evaluator: Arc<dyn Evaluator>,
) -> (DoubleDqn<PrefixQNet>, TrainResult) {
    let mut lp = TrainLoop::new(cfg, evaluator);
    lp.run_to_completion(0, &mut NullObserver);
    lp.into_parts()
}

/// Trains one PrefixRL agent and returns the run record.
#[deprecated(
    since = "0.2.0",
    note = "use `experiment::Experiment::builder()` (or `TrainLoop` directly) instead"
)]
pub fn train(cfg: &AgentConfig, evaluator: Arc<dyn Evaluator>) -> TrainResult {
    TrainLoop::run(cfg, evaluator)
}

/// Rolls out the greedy policy (ε = 0) from each starting state, returning
/// the designs visited — how trained agents emit their final adders.
#[deprecated(since = "0.2.0", note = "use `experiment::greedy_designs` instead")]
pub fn greedy_rollout(
    dqn: &mut DoubleDqn<PrefixQNet>,
    cfg: &EnvConfig,
    evaluator: Arc<dyn Evaluator>,
    episodes: usize,
    seed: u64,
) -> Vec<(PrefixGraph, ObjectivePoint)> {
    crate::experiment::greedy_designs(dqn, cfg, evaluator, episodes, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedEvaluator;
    use crate::task::{by_name, Adder, PrefixOr, TaskEvaluator};

    fn run(cfg: &AgentConfig, evaluator: Arc<dyn Evaluator>) -> TrainResult {
        TrainLoop::run(cfg, evaluator)
    }

    #[test]
    fn tiny_training_run_completes_and_harvests_designs() {
        let cfg = AgentConfig::tiny(8, 0.5);
        let eval = Arc::new(CachedEvaluator::new(TaskEvaluator::analytical(Adder)));
        let result = run(&cfg, eval.clone());
        assert_eq!(result.steps, 300);
        assert!(
            result.designs.len() > 20,
            "only {} designs",
            result.designs.len()
        );
        assert!(!result.losses.is_empty(), "training never started");
        // The cache must have seen repeated states (start states recur).
        assert!(eval.hits() > 0);
        // All harvested designs are legal.
        for (g, p) in &result.designs {
            g.verify_legal().unwrap();
            assert!(p.area > 0.0 && p.delay > 0.0);
        }
    }

    #[test]
    fn front_is_nonempty_and_consistent() {
        let cfg = AgentConfig::tiny(8, 0.3);
        let result = run(&cfg, Arc::new(TaskEvaluator::analytical(Adder)));
        let front = result.front();
        assert!(!front.is_empty());
        // No design may dominate a front member.
        for (p, _) in front.iter() {
            for (_, q) in &result.designs {
                assert!(!q.dominates(p), "front member dominated");
            }
        }
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let cfg = AgentConfig::tiny(8, 0.5);
        let a = run(&cfg, Arc::new(TaskEvaluator::analytical(Adder)));
        let b = run(&cfg, Arc::new(TaskEvaluator::analytical(Adder)));
        assert_eq!(a.designs.len(), b.designs.len());
        assert_eq!(a.losses, b.losses);
        // BTreeMap-backed pools make the design ordering itself stable.
        for ((ga, pa), (gb, pb)) in a.designs.iter().zip(&b.designs) {
            assert_eq!(ga.canonical_key(), gb.canonical_key());
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn deprecated_wrappers_still_train() {
        #[allow(deprecated)]
        let result = train(
            &AgentConfig::tiny(8, 0.5),
            Arc::new(TaskEvaluator::analytical(Adder)),
        );
        assert_eq!(result.steps, 300);
        assert!(!result.losses.is_empty());
    }

    #[test]
    fn greedy_rollout_emits_designs() {
        let cfg = AgentConfig::tiny(8, 0.5);
        let eval: Arc<dyn Evaluator> = Arc::new(TaskEvaluator::analytical(Adder));
        let mut lp = TrainLoop::new(&cfg, Arc::clone(&eval));
        lp.run_to_completion(0, &mut NullObserver);
        let (mut dqn, _) = lp.into_parts();
        let designs = crate::experiment::greedy_designs(&mut dqn, &cfg.env, eval, 2, 7);
        assert!(designs.len() > 2);
    }

    #[test]
    fn checkpoint_records_task_and_refuses_mismatch() {
        let cfg = AgentConfig::tiny(8, 0.5);
        let or_eval: Arc<dyn Evaluator> = Arc::new(TaskEvaluator::analytical(PrefixOr));
        let mut lp = TrainLoop::with_task(&cfg, by_name("prefix-or").unwrap(), or_eval.clone());
        for _ in 0..20 {
            lp.step_once(0, &mut NullObserver);
        }
        let ckpt = lp.checkpoint();
        assert_eq!(ckpt.cfg.env.task, "prefix-or");
        // Matching task resumes fine…
        assert!(TrainLoop::from_checkpoint_with_task(
            &ckpt,
            by_name("prefix-or").unwrap(),
            or_eval
        )
        .is_ok());
        // …a different task is refused loudly.
        let err = TrainLoop::from_checkpoint_with_task(
            &ckpt,
            Arc::new(Adder),
            Arc::new(TaskEvaluator::analytical(Adder)),
        )
        .err()
        .expect("mismatch must fail");
        assert!(err.contains("task mismatch"), "{err}");
        assert!(err.contains("prefix-or") && err.contains("adder"), "{err}");
    }

    #[test]
    fn run_while_polls_cancel_and_stays_checkpointable() {
        use crate::experiment::CancelToken;
        let cfg = AgentConfig::tiny(8, 0.5);
        let eval: Arc<dyn Evaluator> = Arc::new(TaskEvaluator::analytical(Adder));
        let mut lp = TrainLoop::new(&cfg, Arc::clone(&eval));
        // A pre-cancelled token stops before the first step.
        let token = CancelToken::new();
        token.cancel();
        assert!(!lp.run_while(0, &mut NullObserver, &token));
        assert_eq!(lp.step(), 0);
        // The stopped loop is intact: checkpoint + rebuild works mid-run.
        let ckpt = lp.checkpoint();
        let resumed = TrainLoop::from_checkpoint(&ckpt, Arc::clone(&eval)).unwrap();
        assert_eq!(resumed.step(), 0);
        // A live token lets the same loop run out its budget.
        assert!(lp.run_while(0, &mut NullObserver, &CancelToken::new()));
        assert!(lp.is_done());
    }

    #[test]
    fn best_scalarized_tracks_weight() {
        let cfg = AgentConfig::tiny(8, 0.5);
        let result = run(&cfg, Arc::new(TaskEvaluator::analytical(Adder)));
        let small = result.best_scalarized(1.0, 1.0, 1.0).unwrap();
        let fast = result.best_scalarized(0.0, 1.0, 1.0).unwrap();
        assert!(small.1.area <= fast.1.area);
        assert!(fast.1.delay <= small.1.delay);
    }
}
