//! The PrefixRL training loop.
//!
//! One agent is trained per scalarization weight `w`; the paper trains 15
//! agents with `w_area ∈ [0.10, 0.99]` and assembles the Pareto frontier
//! from the designs they discover. Every state visited during training is
//! harvested into the design pool (with its evaluated objectives), which is
//! what the figure harnesses bin into fronts.

use crate::env::{EnvConfig, PrefixEnv};
use crate::evaluator::{Evaluator, ObjectivePoint};
use crate::pareto::ParetoFront;
use crate::qnet::{PrefixQNet, QNetConfig};
use prefix_graph::PrefixGraph;
use rand::prelude::*;
use rl::{DoubleDqn, DqnConfig, EpsilonSchedule, ReplayBuffer, Transition};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Full configuration of one PrefixRL agent.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Environment settings.
    pub env: EnvConfig,
    /// Q-network settings.
    pub qnet: QNetConfig,
    /// Double-DQN settings (includes the scalarization weight).
    pub dqn: DqnConfig,
    /// Total environment steps.
    pub total_steps: u64,
    /// Replay buffer capacity (paper: 4×10⁵).
    pub replay_capacity: usize,
    /// Exploration start ε.
    pub eps_start: f64,
    /// Exploration end ε (annealed to ~0 as in the paper).
    pub eps_end: f64,
    /// Steps over which ε anneals.
    pub eps_decay_steps: u64,
    /// Gradient steps per environment step.
    pub train_every: u64,
    /// Environments each async actor steps in lockstep, batching its
    /// Q-network forwards (the serial path always uses one).
    pub envs_per_actor: usize,
    /// Master seed.
    pub seed: u64,
}

impl AgentConfig {
    /// A minimal configuration for unit tests (analytical reward scale).
    pub fn tiny(n: u16, w_area: f32) -> Self {
        AgentConfig {
            env: EnvConfig::analytical(n),
            qnet: QNetConfig::tiny(n),
            dqn: DqnConfig {
                batch_size: 16,
                min_replay: 64,
                ..DqnConfig::paper(w_area)
            },
            total_steps: 300,
            replay_capacity: 4_000,
            eps_start: 1.0,
            eps_end: 0.05,
            eps_decay_steps: 200,
            train_every: 1,
            envs_per_actor: 2,
            seed: 0,
        }
    }

    /// A CPU-tractable experiment configuration.
    pub fn small(n: u16, w_area: f32, total_steps: u64) -> Self {
        AgentConfig {
            env: EnvConfig::analytical(n),
            qnet: QNetConfig::small(n),
            dqn: DqnConfig {
                batch_size: 16,
                min_replay: 200,
                ..DqnConfig::paper(w_area)
            },
            total_steps,
            replay_capacity: 20_000,
            eps_start: 1.0,
            eps_end: 0.02,
            eps_decay_steps: total_steps * 3 / 4,
            train_every: 1,
            envs_per_actor: 2,
            seed: 0,
        }
    }

    /// The paper's full-scale configuration (5×10⁵ steps, B=32, C=256,
    /// replay 4×10⁵, Adam 4e-5) — constructible but sized for a cluster.
    pub fn paper(n: u16, w_area: f32) -> Self {
        AgentConfig {
            env: EnvConfig::synthesis(n),
            qnet: QNetConfig::paper(n),
            dqn: DqnConfig::paper(w_area),
            total_steps: 500_000,
            replay_capacity: 400_000,
            eps_start: 1.0,
            eps_end: 0.0,
            eps_decay_steps: 400_000,
            train_every: 1,
            envs_per_actor: 4,
            seed: 0,
        }
    }
}

/// Everything a training run produces.
pub struct TrainResult {
    /// Every distinct design visited, with its evaluated objectives.
    pub designs: Vec<(PrefixGraph, ObjectivePoint)>,
    /// Per-gradient-step losses.
    pub losses: Vec<f32>,
    /// Scalarized episode returns (training diagnostic).
    pub episode_returns: Vec<f64>,
    /// Environment steps executed.
    pub steps: u64,
}

impl TrainResult {
    /// The Pareto front over all visited designs.
    pub fn front(&self) -> ParetoFront<PrefixGraph> {
        self.designs.iter().map(|(g, p)| (*p, g.clone())).collect()
    }

    /// The design minimizing the scalarized objective.
    pub fn best_scalarized(
        &self,
        w_area: f64,
        c_area: f64,
        c_delay: f64,
    ) -> Option<&(PrefixGraph, ObjectivePoint)> {
        self.designs.iter().min_by(|a, b| {
            let cost =
                |p: &ObjectivePoint| w_area * c_area * p.area + (1.0 - w_area) * c_delay * p.delay;
            cost(&a.1).total_cmp(&cost(&b.1))
        })
    }
}

/// Trains one PrefixRL agent, returning the trainer and the run record.
pub fn train_with_agent(
    cfg: &AgentConfig,
    evaluator: Arc<dyn Evaluator>,
) -> (DoubleDqn<PrefixQNet>, TrainResult) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut env = PrefixEnv::new(cfg.env.clone(), Arc::clone(&evaluator));
    let online = PrefixQNet::new(&cfg.qnet);
    let target = PrefixQNet::new(&QNetConfig {
        seed: cfg.qnet.seed ^ 0x5eed,
        ..cfg.qnet.clone()
    });
    let mut dqn = DoubleDqn::new(online, target, cfg.dqn.clone());
    let mut replay = ReplayBuffer::new(cfg.replay_capacity);
    let schedule = EpsilonSchedule::linear(cfg.eps_start, cfg.eps_end, cfg.eps_decay_steps);

    let mut designs: HashMap<Vec<u64>, (PrefixGraph, ObjectivePoint)> = HashMap::new();
    let record = |designs: &mut HashMap<Vec<u64>, (PrefixGraph, ObjectivePoint)>,
                  env: &PrefixEnv| {
        designs
            .entry(env.graph().canonical_key())
            .or_insert_with(|| (env.graph().clone(), env.metrics()));
    };

    let mut losses = Vec::new();
    let mut episode_returns = Vec::new();
    let mut episode_return = 0.0f64;
    env.reset(&mut rng);
    record(&mut designs, &env);
    for step in 0..cfg.total_steps {
        let eps = schedule.value(step);
        let state = env.features();
        let mask = env.action_mask();
        let action = dqn
            .act(&state, &mask, eps, &mut rng)
            .expect("prefix env always has a legal action");
        let outcome = env.step_flat(action);
        record(&mut designs, &env);
        episode_return +=
            (cfg.dqn.weight[0] * outcome.reward[0] + cfg.dqn.weight[1] * outcome.reward[1]) as f64;
        replay.push(Transition {
            state,
            action,
            reward: outcome.reward,
            next_state: env.features(),
            next_mask: env.action_mask(),
            done: false, // no terminal states; truncation bootstraps
        });
        if cfg.train_every > 0 && step % cfg.train_every == 0 {
            if let Some(loss) = dqn.train_step(&replay, &mut rng) {
                losses.push(loss);
            }
        }
        if outcome.truncated {
            episode_returns.push(episode_return);
            episode_return = 0.0;
            env.reset(&mut rng);
            record(&mut designs, &env);
        }
    }
    let result = TrainResult {
        designs: designs.into_values().collect(),
        losses,
        episode_returns,
        steps: cfg.total_steps,
    };
    (dqn, result)
}

/// Trains one PrefixRL agent and returns the run record.
pub fn train(cfg: &AgentConfig, evaluator: Arc<dyn Evaluator>) -> TrainResult {
    train_with_agent(cfg, evaluator).1
}

/// Rolls out the greedy policy (ε = 0) from each starting state, returning
/// the designs visited — how trained agents emit their final adders.
pub fn greedy_rollout(
    dqn: &mut DoubleDqn<PrefixQNet>,
    cfg: &EnvConfig,
    evaluator: Arc<dyn Evaluator>,
    episodes: usize,
    seed: u64,
) -> Vec<(PrefixGraph, ObjectivePoint)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut env = PrefixEnv::new(cfg.clone(), evaluator);
    let mut out: HashMap<Vec<u64>, (PrefixGraph, ObjectivePoint)> = HashMap::new();
    for _ in 0..episodes {
        env.reset(&mut rng);
        out.entry(env.graph().canonical_key())
            .or_insert_with(|| (env.graph().clone(), env.metrics()));
        loop {
            let state = env.features();
            let mask = env.action_mask();
            let Some(a) = dqn.greedy_action(&state, &mask) else {
                break;
            };
            let outcome = env.step_flat(a);
            out.entry(env.graph().canonical_key())
                .or_insert_with(|| (env.graph().clone(), env.metrics()));
            if outcome.truncated {
                break;
            }
        }
    }
    out.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedEvaluator;
    use crate::evaluator::AnalyticalEvaluator;

    #[test]
    fn tiny_training_run_completes_and_harvests_designs() {
        let cfg = AgentConfig::tiny(8, 0.5);
        let eval = Arc::new(CachedEvaluator::new(AnalyticalEvaluator));
        let result = train(&cfg, eval.clone());
        assert_eq!(result.steps, 300);
        assert!(
            result.designs.len() > 20,
            "only {} designs",
            result.designs.len()
        );
        assert!(!result.losses.is_empty(), "training never started");
        // The cache must have seen repeated states (start states recur).
        assert!(eval.hits() > 0);
        // All harvested designs are legal.
        for (g, p) in &result.designs {
            g.verify_legal().unwrap();
            assert!(p.area > 0.0 && p.delay > 0.0);
        }
    }

    #[test]
    fn front_is_nonempty_and_consistent() {
        let cfg = AgentConfig::tiny(8, 0.3);
        let result = train(&cfg, Arc::new(AnalyticalEvaluator));
        let front = result.front();
        assert!(!front.is_empty());
        // No design may dominate a front member.
        for (p, _) in front.iter() {
            for (_, q) in &result.designs {
                assert!(!q.dominates(p), "front member dominated");
            }
        }
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let cfg = AgentConfig::tiny(8, 0.5);
        let a = train(&cfg, Arc::new(AnalyticalEvaluator));
        let b = train(&cfg, Arc::new(AnalyticalEvaluator));
        assert_eq!(a.designs.len(), b.designs.len());
        assert_eq!(a.losses.len(), b.losses.len());
        assert_eq!(a.losses.first(), b.losses.first());
        assert_eq!(a.losses.last(), b.losses.last());
    }

    #[test]
    fn greedy_rollout_emits_designs() {
        let cfg = AgentConfig::tiny(8, 0.5);
        let eval: Arc<dyn Evaluator> = Arc::new(AnalyticalEvaluator);
        let (mut dqn, _) = train_with_agent(&cfg, Arc::clone(&eval));
        let designs = greedy_rollout(&mut dqn, &cfg.env, eval, 2, 7);
        assert!(designs.len() > 2);
    }

    #[test]
    fn best_scalarized_tracks_weight() {
        let cfg = AgentConfig::tiny(8, 0.5);
        let result = train(&cfg, Arc::new(AnalyticalEvaluator));
        let small = result.best_scalarized(1.0, 1.0, 1.0).unwrap();
        let fast = result.best_scalarized(0.0, 1.0, 1.0).unwrap();
        assert!(small.1.area <= fast.1.area);
        assert!(fast.1.delay <= small.1.delay);
    }
}
