//! Circuit tasks and objective backends: the pluggable workload layer.
//!
//! The paper's concluding observation — and the related cross-layer /
//! pruned-search literature — is that the PrefixRL MDP is not about adders:
//! *any* parallel prefix computation over an associative operator shares the
//! same state space, action space, and legalization rules, and only the
//! mapping from prefix graph to gates (and the oracle scoring those gates)
//! differs. This module makes that split first-class with two traits:
//!
//! - [`CircuitTask`] — what is being computed: netlist emission from a
//!   [`PrefixGraph`], a bit-level functional reference for
//!   simulation-checking the emitted gates, the analytical objective, the
//!   episode start-state set, and a stable [`CircuitTask::task_id`] used by
//!   cache keys, checkpoints, and reports. Three tasks ship built-in:
//!   [`Adder`] (the paper's workload), [`PrefixOr`] (priority-encoder /
//!   leading-zero spines), and [`Incrementer`] (AND-prefix carry chains).
//! - [`ObjectiveBackend`] — how a task's circuit is scored: the
//!   [`AnalyticalBackend`] (graph-level model of ref. \[14\]) or the
//!   [`SynthesisBackend`] (emit the task netlist, run the Fig. 3
//!   timing-driven sweep, return the `w`-optimal point), optionally with a
//!   static switching-power annotation off the reward path.
//!
//! [`TaskEvaluator`] binds a task to a backend as a concrete
//! [`Evaluator`], which is what the whole evaluation stack
//! ([`crate::cache::CachedEvaluator`], [`crate::evalsvc::EvalService`],
//! [`crate::env::PrefixEnv`]) consumes. Its
//! [`Evaluator::cache_discriminant`] is derived from `(task_id,
//! backend_id)`, so evaluation caches never alias points across tasks or
//! backends even when shared.
//!
//! The historical [`crate::evaluator::AnalyticalEvaluator`] /
//! [`crate::evaluator::SynthesisEvaluator`] pair remains as deprecated
//! wrappers over the adder task.

use crate::evaluator::{Evaluator, ObjectivePoint};
use netlist::{Library, Netlist};
use prefix_graph::{analytical, structures, PrefixGraph};
use std::sync::Arc;
use synth::sweep::{sweep_netlist, SweepConfig};
use synth::AreaDelayCurve;

// ------------------------------------------------------------------ tasks

/// A parallel prefix computation the PrefixRL environment can optimize.
///
/// Implementations must be stateless and deterministic: the same graph must
/// always emit the same netlist, and `task_id` must be stable across
/// processes (it is recorded in checkpoints and cache keys).
pub trait CircuitTask: Send + Sync {
    /// Stable identifier (e.g. `"adder"`), recorded in checkpoints,
    /// reports, and cache-key discriminants. Lowercase kebab-case.
    fn task_id(&self) -> &'static str;

    /// Emits the gate-level netlist computing this task over `graph`.
    fn emit_netlist(&self, graph: &PrefixGraph) -> Netlist;

    /// Number of primary input bits of the emitted netlist at width `n`.
    fn input_bits(&self, n: u16) -> usize;

    /// Number of primary output bits of the emitted netlist at width `n`.
    fn output_bits(&self, n: u16) -> usize;

    /// The golden functional model: expected primary outputs for a primary
    /// input assignment (both in netlist declaration order). Used by the
    /// equivalence tests to check emitted gates against task semantics.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `inputs.len() != self.input_bits(n)`.
    fn reference(&self, n: u16, inputs: &[bool]) -> Vec<bool>;

    /// The analytical objective of ref. \[14\] (area = node count, node
    /// delay `1 + 0.5·fanout`). The model is graph-level, so the default
    /// is shared by every task.
    fn analytical(&self, graph: &PrefixGraph) -> ObjectivePoint {
        let m = analytical::evaluate(graph);
        ObjectivePoint {
            area: m.area,
            delay: m.delay,
        }
    }

    /// The episode start-state set, in priority order. The default is the
    /// paper's pair: ripple-carry (minimum nodes) then Sklansky (minimum
    /// levels). [`crate::env::StartState`] indexes into this set.
    fn start_states(&self, n: u16) -> Vec<PrefixGraph> {
        vec![PrefixGraph::ripple(n), structures::sklansky(n)]
    }
}

/// The paper's workload: a parallel prefix adder (`s = a + b`, carry out).
#[derive(Clone, Copy, Debug, Default)]
pub struct Adder;

impl CircuitTask for Adder {
    fn task_id(&self) -> &'static str {
        "adder"
    }

    fn emit_netlist(&self, graph: &PrefixGraph) -> Netlist {
        netlist::adder::generate(graph)
    }

    fn input_bits(&self, n: u16) -> usize {
        2 * n as usize
    }

    fn output_bits(&self, n: u16) -> usize {
        n as usize + 1
    }

    fn reference(&self, n: u16, inputs: &[bool]) -> Vec<bool> {
        let n = n as usize;
        assert_eq!(inputs.len(), 2 * n, "adder expects 2N input bits");
        let (a, b) = inputs.split_at(n);
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = false;
        for i in 0..n {
            let half = a[i] ^ b[i];
            out.push(half ^ carry);
            carry = (a[i] & b[i]) | (half & carry);
        }
        out.push(carry);
        out
    }
}

/// OR-prefix: `y_i = x_i | x_{i-1} | … | x_0` — the spine of priority
/// encoders and leading-zero detectors.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrefixOr;

impl CircuitTask for PrefixOr {
    fn task_id(&self) -> &'static str {
        "prefix-or"
    }

    fn emit_netlist(&self, graph: &PrefixGraph) -> Netlist {
        netlist::prefix_or::generate(graph)
    }

    fn input_bits(&self, n: u16) -> usize {
        n as usize
    }

    fn output_bits(&self, n: u16) -> usize {
        n as usize
    }

    fn reference(&self, n: u16, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), n as usize, "prefix-or expects N input bits");
        let mut acc = false;
        inputs
            .iter()
            .map(|&x| {
                acc |= x;
                acc
            })
            .collect()
    }
}

/// AND-prefix incrementer: `s = a + 1` via the carry chain
/// `c_i = a_i & a_{i-1} & … & a_0`, plus the carry out.
#[derive(Clone, Copy, Debug, Default)]
pub struct Incrementer;

impl CircuitTask for Incrementer {
    fn task_id(&self) -> &'static str {
        "incrementer"
    }

    fn emit_netlist(&self, graph: &PrefixGraph) -> Netlist {
        netlist::incrementer::generate(graph)
    }

    fn input_bits(&self, n: u16) -> usize {
        n as usize
    }

    fn output_bits(&self, n: u16) -> usize {
        n as usize + 1
    }

    fn reference(&self, n: u16, inputs: &[bool]) -> Vec<bool> {
        let n = n as usize;
        assert_eq!(inputs.len(), n, "incrementer expects N input bits");
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = true; // the +1
        for &a in inputs {
            out.push(a ^ carry);
            carry &= a;
        }
        out.push(carry);
        out
    }
}

/// The task ids every built-in task registers under, in CLI listing order.
pub const TASK_NAMES: &[&str] = &["adder", "prefix-or", "incrementer"];

/// Resolves a built-in task by its [`CircuitTask::task_id`]. Custom tasks
/// are handed to the stack directly as `Arc<dyn CircuitTask>` instead.
pub fn by_name(name: &str) -> Option<Arc<dyn CircuitTask>> {
    match name {
        "adder" => Some(Arc::new(Adder)),
        "prefix-or" => Some(Arc::new(PrefixOr)),
        "incrementer" => Some(Arc::new(Incrementer)),
        _ => None,
    }
}

// --------------------------------------------------------------- backends

/// An oracle scoring a task's circuit for a prefix-graph state.
///
/// Implementations must be deterministic per `(task, graph)`: the shared
/// evaluation cache assumes a state always scores to the same point.
pub trait ObjectiveBackend: Send + Sync {
    /// Stable identifier (e.g. `"analytical"`, `"synthesis"`), combined
    /// with the task id into the cache-key discriminant.
    fn backend_id(&self) -> &'static str;

    /// Scores `graph` under `task`, both objectives minimized.
    fn score(&self, task: &dyn CircuitTask, graph: &PrefixGraph) -> ObjectivePoint;

    /// Optional per-design annotation **off the reward path**: estimated
    /// dynamic switching power in µW, when the backend can produce one.
    /// Reported alongside frontier points, never folded into rewards.
    fn annotate(&self, _task: &dyn CircuitTask, _graph: &PrefixGraph) -> Option<f64> {
        None
    }
}

/// The analytical model of ref. \[14\] (microseconds per state): delegates
/// to [`CircuitTask::analytical`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalyticalBackend;

impl ObjectiveBackend for AnalyticalBackend {
    fn backend_id(&self) -> &'static str {
        "analytical"
    }

    fn score(&self, task: &dyn CircuitTask, graph: &PrefixGraph) -> ObjectivePoint {
        task.analytical(graph)
    }
}

/// Synthesis in the loop (the paper's Fig. 3 pipeline), generalized over
/// the task's netlist emitter: generate the task netlist, run the
/// timing-driven sweep at a handful of delay targets, PCHIP-interpolate
/// the area-delay curve, and return the `w`-optimal point.
///
/// With [`SynthesisBackend::with_power_annotation`], each design is also
/// annotated with the static switching-power estimate of [`synth::power`]
/// — annotation only, never part of the reward.
#[derive(Clone, Debug)]
pub struct SynthesisBackend {
    lib: Library,
    sweep: SweepConfig,
    w_area: f64,
    w_delay: f64,
    c_area: f64,
    c_delay: f64,
    power_annotation: bool,
}

impl SynthesisBackend {
    /// Creates a backend for scalarization weight `w_area`
    /// (`w_delay = 1 - w_area`) over the given library, using the paper's
    /// unit-scaling constants (`c_area = 0.001`, `c_delay = 10`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ w_area ≤ 1`.
    pub fn new(lib: Library, sweep: SweepConfig, w_area: f64) -> Self {
        assert!((0.0..=1.0).contains(&w_area), "w_area must be in [0,1]");
        SynthesisBackend {
            lib,
            sweep,
            w_area,
            w_delay: 1.0 - w_area,
            c_area: 0.001,
            c_delay: 10.0,
            power_annotation: false,
        }
    }

    /// Overrides the paper's unit-scaling constants.
    pub fn with_scaling(mut self, c_area: f64, c_delay: f64) -> Self {
        self.c_area = c_area;
        self.c_delay = c_delay;
        self
    }

    /// Enables the switching-power annotation (backend id becomes
    /// `"synthesis-power"`). The estimate stays off the reward path.
    pub fn with_power_annotation(mut self) -> Self {
        self.power_annotation = true;
        self
    }

    /// The full interpolated area-delay curve of `graph`'s task netlist
    /// (used by figure harnesses, which bin many delay targets).
    pub fn curve(&self, task: &dyn CircuitTask, graph: &PrefixGraph) -> AreaDelayCurve {
        sweep_netlist(&task.emit_netlist(graph), &self.lib, &self.sweep)
    }

    /// The cell library this backend synthesizes with.
    pub fn library(&self) -> &Library {
        &self.lib
    }
}

impl ObjectiveBackend for SynthesisBackend {
    fn backend_id(&self) -> &'static str {
        if self.power_annotation {
            "synthesis-power"
        } else {
            "synthesis"
        }
    }

    fn score(&self, task: &dyn CircuitTask, graph: &PrefixGraph) -> ObjectivePoint {
        let curve = self.curve(task, graph);
        let (area, delay) =
            curve.scalarized_optimum(self.w_area, self.w_delay, self.c_area, self.c_delay);
        ObjectivePoint { area, delay }
    }

    fn annotate(&self, task: &dyn CircuitTask, graph: &PrefixGraph) -> Option<f64> {
        self.power_annotation
            .then(|| synth::power::estimate(&task.emit_netlist(graph), &self.lib))
    }
}

/// The backend names the CLI accepts, in listing order.
pub const BACKEND_NAMES: &[&str] = &["analytical", "synthesis", "synthesis-power"];

// --------------------------------------------------------- task evaluator

/// FNV-1a over the `task_id/backend_id` pair: the cache-key discriminant
/// that keeps two `(task, backend)` combinations from ever aliasing a
/// cached point.
pub fn discriminant_of(task_id: &str, backend_id: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in task_id
        .as_bytes()
        .iter()
        .chain(b"/")
        .chain(backend_id.as_bytes())
    {
        h ^= *byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A [`CircuitTask`] bound to an [`ObjectiveBackend`] as a concrete
/// [`Evaluator`] — the unit the caching/evaluation stack consumes.
pub struct TaskEvaluator {
    task: Arc<dyn CircuitTask>,
    backend: Arc<dyn ObjectiveBackend>,
    name: String,
    discriminant: u64,
}

impl TaskEvaluator {
    /// Binds `task` to `backend`.
    pub fn new(task: Arc<dyn CircuitTask>, backend: Arc<dyn ObjectiveBackend>) -> Self {
        let name = format!("{}/{}", task.task_id(), backend.backend_id());
        let discriminant = discriminant_of(task.task_id(), backend.backend_id());
        TaskEvaluator {
            task,
            backend,
            name,
            discriminant,
        }
    }

    /// Shorthand: `task` scored by the [`AnalyticalBackend`].
    pub fn analytical(task: impl CircuitTask + 'static) -> Self {
        Self::new(Arc::new(task), Arc::new(AnalyticalBackend))
    }

    /// Shorthand: `task` scored by a [`SynthesisBackend`] at weight
    /// `w_area`.
    pub fn synthesis(
        task: impl CircuitTask + 'static,
        lib: Library,
        sweep: SweepConfig,
        w_area: f64,
    ) -> Self {
        Self::new(
            Arc::new(task),
            Arc::new(SynthesisBackend::new(lib, sweep, w_area)),
        )
    }

    /// The bound task.
    pub fn task(&self) -> &Arc<dyn CircuitTask> {
        &self.task
    }

    /// The bound backend.
    pub fn backend(&self) -> &Arc<dyn ObjectiveBackend> {
        &self.backend
    }

    /// The backend's off-reward-path annotation for `graph`, if any.
    pub fn annotate(&self, graph: &PrefixGraph) -> Option<f64> {
        self.backend.annotate(self.task.as_ref(), graph)
    }
}

impl Evaluator for TaskEvaluator {
    fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
        self.backend.score(self.task.as_ref(), graph)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn cache_discriminant(&self) -> u64 {
        self.discriminant
    }

    fn bound_task_id(&self) -> Option<&str> {
        Some(self.task.task_id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_tasks() -> Vec<Arc<dyn CircuitTask>> {
        TASK_NAMES
            .iter()
            .map(|n| by_name(n).expect("registered"))
            .collect()
    }

    #[test]
    fn registry_round_trips_ids() {
        for name in TASK_NAMES {
            let task = by_name(name).expect("registered task");
            assert_eq!(task.task_id(), *name);
        }
        assert!(by_name("multiplier").is_none());
    }

    #[test]
    fn emitted_netlists_have_declared_shapes() {
        for task in all_tasks() {
            for n in [4u16, 8, 16] {
                let nl = task.emit_netlist(&structures::sklansky(n));
                assert_eq!(nl.inputs().len(), task.input_bits(n), "{}", task.task_id());
                assert_eq!(
                    nl.outputs().len(),
                    task.output_bits(n),
                    "{}",
                    task.task_id()
                );
            }
        }
    }

    #[test]
    fn references_match_word_arithmetic() {
        let n = 8u16;
        let bits = |x: u64, k: usize| (0..k).map(|i| (x >> i) & 1 == 1).collect::<Vec<bool>>();
        let word = |v: &[bool]| {
            v.iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
        };
        for a in [0u64, 1, 41, 170, 255] {
            for b in [0u64, 1, 85, 254, 255] {
                let mut inputs = bits(a, 8);
                inputs.extend(bits(b, 8));
                assert_eq!(word(&Adder.reference(n, &inputs)), a + b);
            }
            assert_eq!(word(&Incrementer.reference(n, &bits(a, 8))), a + 1);
            assert_eq!(
                word(&PrefixOr.reference(n, &bits(a, 8))),
                netlist::prefix_or::reference(a, 8)
            );
        }
    }

    #[test]
    fn start_states_are_legal_and_paper_shaped() {
        for task in all_tasks() {
            let pool = task.start_states(8);
            assert_eq!(pool.len(), 2, "{}", task.task_id());
            for g in &pool {
                g.verify_legal().unwrap();
                assert_eq!(g.n(), 8);
            }
            assert_eq!(pool[0].size(), 7, "ripple first");
            assert_eq!(pool[1].size(), 12, "sklansky second");
        }
    }

    #[test]
    fn analytical_backend_is_graph_level() {
        let g = structures::brent_kung(16);
        let m = analytical::evaluate(&g);
        for task in all_tasks() {
            let p = AnalyticalBackend.score(task.as_ref(), &g);
            assert_eq!(p.area, m.area, "{}", task.task_id());
            assert_eq!(p.delay, m.delay, "{}", task.task_id());
        }
    }

    #[test]
    fn synthesis_backend_separates_tasks() {
        // The same graph synthesizes to very different circuits per task:
        // one gate per node for OR-prefix vs G/P pairs for the adder.
        let g = structures::sklansky(8);
        let lib = Library::nangate45();
        let backend = SynthesisBackend::new(lib, SweepConfig::fast(), 0.5);
        let adder = backend.score(&Adder, &g);
        let or = backend.score(&PrefixOr, &g);
        let inc = backend.score(&Incrementer, &g);
        assert!(or.area < adder.area, "or {or:?} vs adder {adder:?}");
        assert!(inc.area < adder.area, "inc {inc:?} vs adder {adder:?}");
    }

    #[test]
    fn power_annotation_is_opt_in() {
        let g = structures::sklansky(8);
        let lib = Library::nangate45();
        let plain = SynthesisBackend::new(lib.clone(), SweepConfig::fast(), 0.5);
        assert_eq!(plain.backend_id(), "synthesis");
        assert!(plain.annotate(&Adder, &g).is_none());
        assert!(AnalyticalBackend.annotate(&Adder, &g).is_none());
        let power = plain.with_power_annotation();
        assert_eq!(power.backend_id(), "synthesis-power");
        let p = power.annotate(&Adder, &g).expect("annotated");
        assert!(p > 0.0);
        // Annotation does not perturb the reward point.
        let with = power.score(&Adder, &g);
        let without =
            SynthesisBackend::new(Library::nangate45(), SweepConfig::fast(), 0.5).score(&Adder, &g);
        assert_eq!(with, without);
    }

    #[test]
    fn discriminants_are_pairwise_distinct() {
        let mut seen = std::collections::HashSet::new();
        for task in TASK_NAMES {
            for backend in ["analytical", "synthesis", "synthesis-power"] {
                assert!(
                    seen.insert(discriminant_of(task, backend)),
                    "collision at ({task}, {backend})"
                );
            }
        }
    }

    #[test]
    fn task_evaluator_names_and_discriminants() {
        let ev = TaskEvaluator::analytical(PrefixOr);
        assert_eq!(ev.name(), "prefix-or/analytical");
        assert_eq!(
            ev.cache_discriminant(),
            discriminant_of("prefix-or", "analytical")
        );
        assert_ne!(
            ev.cache_discriminant(),
            TaskEvaluator::analytical(Adder).cache_discriminant()
        );
    }
}
