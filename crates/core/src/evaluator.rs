//! Reward oracles: analytical and synthesis-in-the-loop evaluation.
//!
//! The environment asks an [`Evaluator`] for the `(area, delay)` of a prefix
//! graph. Two implementations mirror the paper's two settings:
//!
//! - [`AnalyticalEvaluator`] — the model of Moto & Kaneko \[14\] used for the
//!   "Analytical-PrefixRL" agents of Section V-D (microseconds per state);
//! - [`SynthesisEvaluator`] — the full Fig. 3 pipeline: generate the adder
//!   netlist, run timing-driven synthesis at a handful of delay targets,
//!   PCHIP-interpolate the area-delay curve, and return the `w`-optimal
//!   point (tens of milliseconds per state, hence the caching and
//!   parallelism of Section IV-D).

use netlist::Library;
use prefix_graph::{analytical, PrefixGraph};
use serde::{Deserialize, Serialize};
use synth::sweep::{sweep_graph, SweepConfig};
use synth::AreaDelayCurve;

/// A point in the (area, delay) objective space; both minimized.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObjectivePoint {
    /// Circuit area (µm² for synthesis, node count for analytical).
    pub area: f64,
    /// Circuit delay (ns for synthesis, model units for analytical).
    pub delay: f64,
}

impl ObjectivePoint {
    /// Weak Pareto dominance for minimization (better-or-equal on both,
    /// strictly better on at least one).
    pub fn dominates(&self, other: &ObjectivePoint) -> bool {
        self.area <= other.area
            && self.delay <= other.delay
            && (self.area < other.area || self.delay < other.delay)
    }
}

/// An (area, delay) oracle over prefix graphs.
///
/// Implementations must be deterministic: the synthesis cache assumes a
/// graph always evaluates to the same point.
pub trait Evaluator: Send + Sync {
    /// Evaluates the graph's objectives.
    fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint;

    /// Evaluates a batch of graphs, preserving order.
    ///
    /// The default maps [`Evaluator::evaluate`] serially; implementations
    /// with their own concurrency (notably [`crate::evalsvc::EvalService`])
    /// override it with a parallel version. Callers holding many states
    /// should prefer this entry point so such overrides take effect.
    fn evaluate_many(&self, graphs: &[PrefixGraph]) -> Vec<ObjectivePoint> {
        graphs.iter().map(|g| self.evaluate(g)).collect()
    }

    /// A short name for reports.
    fn name(&self) -> &str;
}

impl Evaluator for Box<dyn Evaluator> {
    fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
        (**self).evaluate(graph)
    }

    fn evaluate_many(&self, graphs: &[PrefixGraph]) -> Vec<ObjectivePoint> {
        (**self).evaluate_many(graphs)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// The analytical model of ref. \[14\]: area = node count, node delay
/// `1 + 0.5·fanout`.
#[derive(Clone, Debug, Default)]
pub struct AnalyticalEvaluator;

impl Evaluator for AnalyticalEvaluator {
    fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
        let m = analytical::evaluate(graph);
        ObjectivePoint {
            area: m.area,
            delay: m.delay,
        }
    }

    fn name(&self) -> &str {
        "analytical"
    }
}

/// Synthesis-in-the-loop evaluation (the paper's Fig. 3 pipeline).
///
/// The returned point is the `w`-optimal point of the interpolated
/// area-delay curve, using the paper's scaling constants
/// (`c_area = 0.001`, `c_delay = 10` by default).
#[derive(Clone, Debug)]
pub struct SynthesisEvaluator {
    lib: Library,
    sweep: SweepConfig,
    w_area: f64,
    w_delay: f64,
    c_area: f64,
    c_delay: f64,
}

impl SynthesisEvaluator {
    /// Creates an evaluator for scalarization weight `w_area`
    /// (`w_delay = 1 - w_area`) over the given library.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ w_area ≤ 1`.
    pub fn new(lib: Library, sweep: SweepConfig, w_area: f64) -> Self {
        assert!((0.0..=1.0).contains(&w_area), "w_area must be in [0,1]");
        SynthesisEvaluator {
            lib,
            sweep,
            w_area,
            w_delay: 1.0 - w_area,
            c_area: 0.001,
            c_delay: 10.0,
        }
    }

    /// Overrides the paper's unit-scaling constants.
    pub fn with_scaling(mut self, c_area: f64, c_delay: f64) -> Self {
        self.c_area = c_area;
        self.c_delay = c_delay;
        self
    }

    /// The full interpolated area-delay curve of a graph (used by the
    /// figure harnesses, which bin syntheses at many delay targets).
    pub fn curve(&self, graph: &PrefixGraph) -> AreaDelayCurve {
        sweep_graph(graph, &self.lib, &self.sweep)
    }

    /// The library this evaluator synthesizes with.
    pub fn library(&self) -> &Library {
        &self.lib
    }
}

impl Evaluator for SynthesisEvaluator {
    fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
        let curve = self.curve(graph);
        let (area, delay) =
            curve.scalarized_optimum(self.w_area, self.w_delay, self.c_area, self.c_delay);
        ObjectivePoint { area, delay }
    }

    fn name(&self) -> &str {
        "synthesis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefix_graph::structures;

    #[test]
    fn dominance_relation() {
        let a = ObjectivePoint {
            area: 1.0,
            delay: 1.0,
        };
        let b = ObjectivePoint {
            area: 2.0,
            delay: 1.0,
        };
        let c = ObjectivePoint {
            area: 0.5,
            delay: 2.0,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c) && !c.dominates(&a), "incomparable");
        assert!(!a.dominates(&a), "strictness");
    }

    #[test]
    fn analytical_matches_model() {
        let g = structures::sklansky(16);
        let p = AnalyticalEvaluator.evaluate(&g);
        assert_eq!(p.area, g.size() as f64);
        assert!(p.delay > 0.0);
    }

    #[test]
    fn synthesis_weight_moves_along_curve() {
        let lib = Library::nangate45();
        let g = structures::sklansky(16);
        let fast = SynthesisEvaluator::new(lib.clone(), SweepConfig::fast(), 0.05);
        let small = SynthesisEvaluator::new(lib, SweepConfig::fast(), 0.95);
        let pf = fast.evaluate(&g);
        let ps = small.evaluate(&g);
        assert!(pf.delay <= ps.delay, "delay-heavy picks faster point");
        assert!(pf.area >= ps.area, "area-heavy picks smaller point");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let lib = Library::nangate45();
        let ev = SynthesisEvaluator::new(lib, SweepConfig::fast(), 0.5);
        let g = structures::brent_kung(8);
        assert_eq!(ev.evaluate(&g), ev.evaluate(&g));
    }
}
