//! The evaluator interface and the objective-point currency.
//!
//! The environment asks an [`Evaluator`] for the `(area, delay)` of a
//! prefix graph. Since the task/backend redesign (DESIGN.md §12), concrete
//! oracles live in [`crate::task`]: a [`crate::task::CircuitTask`] bound to
//! an [`crate::task::ObjectiveBackend`] through
//! [`crate::task::TaskEvaluator`]. This module keeps:
//!
//! - [`ObjectivePoint`] — the minimized `(area, delay)` pair with the one
//!   tested strict/weak dominance definition every Pareto structure uses;
//! - [`Evaluator`] — the engine-facing oracle trait consumed by the cache,
//!   the evaluation service, and the environment, including the
//!   [`Evaluator::cache_discriminant`] that keeps distinct `(task,
//!   backend)` pairs from aliasing cached points;
//! - the historical [`AnalyticalEvaluator`] / [`SynthesisEvaluator`] pair,
//!   now `#[deprecated]` wrappers over the adder task.

use crate::task::{Adder, AnalyticalBackend, ObjectiveBackend, SynthesisBackend};
use netlist::Library;
use prefix_graph::PrefixGraph;
use serde::{Deserialize, Serialize};
use synth::sweep::SweepConfig;
use synth::AreaDelayCurve;

/// A point in the (area, delay) objective space; both minimized.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObjectivePoint {
    /// Circuit area (µm² for synthesis, node count for analytical).
    pub area: f64,
    /// Circuit delay (ns for synthesis, model units for analytical).
    pub delay: f64,
}

impl ObjectivePoint {
    /// Strict Pareto dominance for minimization: better-or-equal on both
    /// objectives and strictly better on at least one. A point never
    /// strictly dominates itself.
    pub fn dominates(&self, other: &ObjectivePoint) -> bool {
        self.weakly_dominates(other) && (self.area < other.area || self.delay < other.delay)
    }

    /// Weak Pareto dominance for minimization: better-or-equal on both
    /// objectives (equality included, so every point weakly dominates
    /// itself). This is the single definition all frontier structures
    /// filter with.
    pub fn weakly_dominates(&self, other: &ObjectivePoint) -> bool {
        self.area <= other.area && self.delay <= other.delay
    }
}

/// An (area, delay) oracle over prefix graphs.
///
/// Implementations must be deterministic: the synthesis cache assumes a
/// graph always evaluates to the same point.
pub trait Evaluator: Send + Sync {
    /// Evaluates the graph's objectives.
    fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint;

    /// Evaluates a batch of graphs, preserving order.
    ///
    /// The default maps [`Evaluator::evaluate`] serially; implementations
    /// with their own concurrency (notably [`crate::evalsvc::EvalService`])
    /// override it with a parallel version. Callers holding many states
    /// should prefer this entry point so such overrides take effect.
    fn evaluate_many(&self, graphs: &[PrefixGraph]) -> Vec<ObjectivePoint> {
        graphs.iter().map(|g| self.evaluate(g)).collect()
    }

    /// A short name for reports.
    fn name(&self) -> &str;

    /// A stable word mixed into every cache key built over this
    /// evaluator's results, so caches never serve one oracle's point for
    /// another's request. [`crate::task::TaskEvaluator`] derives it from
    /// `(task_id, backend_id)`; oracle wrappers must forward it.
    fn cache_discriminant(&self) -> u64 {
        0
    }

    /// The task id this oracle is bound to, when it is task-bound.
    /// [`crate::env::PrefixEnv::with_task`] cross-checks it against the
    /// environment's task, so a checkpoint can never be stamped with one
    /// task while rewards silently score another. `None` (the default)
    /// means task-agnostic — no check. Wrappers must forward it.
    fn bound_task_id(&self) -> Option<&str> {
        None
    }
}

impl Evaluator for Box<dyn Evaluator> {
    fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
        (**self).evaluate(graph)
    }

    fn evaluate_many(&self, graphs: &[PrefixGraph]) -> Vec<ObjectivePoint> {
        (**self).evaluate_many(graphs)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn cache_discriminant(&self) -> u64 {
        (**self).cache_discriminant()
    }

    fn bound_task_id(&self) -> Option<&str> {
        (**self).bound_task_id()
    }
}

/// The analytical model of ref. \[14\] over the adder task.
#[deprecated(
    since = "0.4.0",
    note = "use `task::TaskEvaluator::analytical(task::Adder)` (or any other `CircuitTask`)"
)]
#[derive(Clone, Debug, Default)]
pub struct AnalyticalEvaluator;

#[allow(deprecated)]
impl Evaluator for AnalyticalEvaluator {
    fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
        AnalyticalBackend.score(&Adder, graph)
    }

    fn name(&self) -> &str {
        "analytical"
    }

    fn cache_discriminant(&self) -> u64 {
        crate::task::discriminant_of("adder", "analytical")
    }
}

/// Synthesis-in-the-loop evaluation of the adder task (the paper's Fig. 3
/// pipeline).
#[deprecated(
    since = "0.4.0",
    note = "adder-specific; use `task::SynthesisBackend` with a `CircuitTask` \
            via `task::TaskEvaluator` instead"
)]
#[derive(Clone, Debug)]
pub struct SynthesisEvaluator {
    backend: SynthesisBackend,
}

#[allow(deprecated)]
impl SynthesisEvaluator {
    /// Creates an evaluator for scalarization weight `w_area`
    /// (`w_delay = 1 - w_area`) over the given library.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ w_area ≤ 1`.
    pub fn new(lib: Library, sweep: SweepConfig, w_area: f64) -> Self {
        SynthesisEvaluator {
            backend: SynthesisBackend::new(lib, sweep, w_area),
        }
    }

    /// Overrides the paper's unit-scaling constants.
    pub fn with_scaling(mut self, c_area: f64, c_delay: f64) -> Self {
        self.backend = self.backend.with_scaling(c_area, c_delay);
        self
    }

    /// The full interpolated area-delay curve of a graph (used by the
    /// figure harnesses, which bin syntheses at many delay targets).
    pub fn curve(&self, graph: &PrefixGraph) -> AreaDelayCurve {
        self.backend.curve(&Adder, graph)
    }

    /// The library this evaluator synthesizes with.
    pub fn library(&self) -> &Library {
        self.backend.library()
    }
}

#[allow(deprecated)]
impl Evaluator for SynthesisEvaluator {
    fn evaluate(&self, graph: &PrefixGraph) -> ObjectivePoint {
        self.backend.score(&Adder, graph)
    }

    fn name(&self) -> &str {
        "synthesis"
    }

    fn cache_discriminant(&self) -> u64 {
        crate::task::discriminant_of("adder", self.backend.backend_id())
    }

    fn bound_task_id(&self) -> Option<&str> {
        Some("adder")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskEvaluator;
    use prefix_graph::structures;

    #[test]
    fn dominance_relation() {
        let a = ObjectivePoint {
            area: 1.0,
            delay: 1.0,
        };
        let b = ObjectivePoint {
            area: 2.0,
            delay: 1.0,
        };
        let c = ObjectivePoint {
            area: 0.5,
            delay: 2.0,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c) && !c.dominates(&a), "incomparable");
        assert!(!a.dominates(&a), "strictness");
    }

    #[test]
    fn weak_dominance_includes_equality() {
        let a = ObjectivePoint {
            area: 1.0,
            delay: 1.0,
        };
        let b = ObjectivePoint {
            area: 2.0,
            delay: 1.0,
        };
        assert!(a.weakly_dominates(&a), "weak dominance is reflexive");
        assert!(a.weakly_dominates(&b));
        assert!(!b.weakly_dominates(&a));
        // Strict implies weak, never the converse on equal points.
        assert!(a.dominates(&b) && a.weakly_dominates(&b));
        assert!(a.weakly_dominates(&a) && !a.dominates(&a));
    }

    #[test]
    fn analytical_matches_model() {
        let g = structures::sklansky(16);
        let p = TaskEvaluator::analytical(Adder).evaluate(&g);
        assert_eq!(p.area, g.size() as f64);
        assert!(p.delay > 0.0);
    }

    #[test]
    fn synthesis_weight_moves_along_curve() {
        let lib = Library::nangate45();
        let g = structures::sklansky(16);
        let fast = TaskEvaluator::synthesis(Adder, lib.clone(), SweepConfig::fast(), 0.05);
        let small = TaskEvaluator::synthesis(Adder, lib, SweepConfig::fast(), 0.95);
        let pf = fast.evaluate(&g);
        let ps = small.evaluate(&g);
        assert!(pf.delay <= ps.delay, "delay-heavy picks faster point");
        assert!(pf.area >= ps.area, "area-heavy picks smaller point");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let lib = Library::nangate45();
        let ev = TaskEvaluator::synthesis(Adder, lib, SweepConfig::fast(), 0.5);
        let g = structures::brent_kung(8);
        assert_eq!(ev.evaluate(&g), ev.evaluate(&g));
    }

    /// The deprecated pair must stay exact wrappers over the adder task.
    #[test]
    #[allow(deprecated)]
    fn deprecated_evaluators_match_task_api() {
        let g = structures::brent_kung(16);
        assert_eq!(
            AnalyticalEvaluator.evaluate(&g),
            TaskEvaluator::analytical(Adder).evaluate(&g)
        );
        assert_eq!(
            AnalyticalEvaluator.cache_discriminant(),
            TaskEvaluator::analytical(Adder).cache_discriminant()
        );
        let lib = Library::nangate45();
        let old = SynthesisEvaluator::new(lib.clone(), SweepConfig::fast(), 0.4);
        let new = TaskEvaluator::synthesis(Adder, lib, SweepConfig::fast(), 0.4);
        assert_eq!(old.evaluate(&g), new.evaluate(&g));
        assert_eq!(old.cache_discriminant(), new.cache_discriminant());
    }
}
