//! PrefixRL: deep-RL optimization of parallel prefix circuits.
//!
//! This crate is the paper's primary contribution assembled over the
//! substrate crates:
//!
//! - [`evaluator`]: the reward oracles — the analytical model of ref. \[14\]
//!   and the synthesis-in-the-loop evaluator (netlist generation, 4-target
//!   timing-driven sweep, PCHIP interpolation, `w`-optimal point — Fig. 3);
//! - [`cache`]: the sharded, bounded synthesis result cache keyed by
//!   canonical graph state, with in-flight dedup of concurrent misses
//!   (Section IV-D reports 50%/10% hit rates at 32b/64b);
//! - [`evalsvc`]: the evaluation service routing single-state and batch
//!   evaluation through one front door (workers write disjoint chunks);
//! - [`mod@env`]: the PrefixRL MDP over legal prefix graphs (Section IV-A/B);
//! - [`qnet`]: the convolutional residual Q-network (Fig. 2) implementing
//!   [`rl::QNetwork`];
//! - [`agent`]: the scalarized Double-DQN training loop producing
//!   area-delay-specialized adder designers;
//! - [`parallel`]: the asynchronous actor/learner training system and
//!   parallel synthesis evaluation (Section IV-D);
//! - [`pareto`]: Pareto-front utilities used by every figure of the paper.
//!
//! # Example
//!
//! ```
//! use prefixrl_core::prelude::*;
//! use std::sync::Arc;
//!
//! // Train a tiny agent with the analytical evaluator (fast).
//! let cfg = AgentConfig::tiny(8, 0.5);
//! let eval = Arc::new(CachedEvaluator::new(AnalyticalEvaluator::default()));
//! let result = train(&cfg, eval);
//! assert!(result.designs.len() > 1);
//! ```

#![warn(missing_docs)]

pub mod agent;
pub mod cache;
pub mod env;
pub mod evalsvc;
pub mod evaluator;
pub mod frontier;
pub mod parallel;
pub mod pareto;
pub mod qnet;

/// Convenient re-exports for downstream users.
pub mod prelude {
    pub use crate::agent::{train, AgentConfig, TrainResult};
    pub use crate::cache::{CacheConfig, CachedEvaluator};
    pub use crate::env::{EnvConfig, PrefixEnv};
    pub use crate::evalsvc::{evaluate_batch, EvalService};
    pub use crate::evaluator::{
        AnalyticalEvaluator, Evaluator, ObjectivePoint, SynthesisEvaluator,
    };
    pub use crate::frontier::sweep_front;
    pub use crate::pareto::ParetoFront;
    pub use crate::qnet::{PrefixQNet, QNetConfig};
}
