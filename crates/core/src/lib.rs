//! PrefixRL: deep-RL optimization of parallel prefix circuits.
//!
//! This crate is the paper's primary contribution assembled over the
//! substrate crates:
//!
//! - [`task`]: the pluggable workload layer — [`task::CircuitTask`]
//!   (adder, prefix-OR, incrementer, or any custom prefix computation)
//!   bound to an [`task::ObjectiveBackend`] (analytical, synthesis,
//!   synthesis with power annotation) through [`task::TaskEvaluator`];
//! - [`evaluator`]: the oracle interface and the `(area, delay)`
//!   objective-point currency with its strict/weak dominance definitions
//!   (the historical adder-specific evaluators remain as deprecated
//!   wrappers);
//! - [`cache`]: the sharded, bounded synthesis result cache keyed by
//!   canonical graph state, with in-flight dedup of concurrent misses
//!   (Section IV-D reports 50%/10% hit rates at 32b/64b);
//! - [`evalsvc`]: the evaluation service routing single-state and batch
//!   evaluation through one front door (workers write disjoint chunks);
//! - [`mod@env`]: the PrefixRL MDP over legal prefix graphs (Section IV-A/B);
//! - [`qnet`]: the convolutional residual Q-network (Fig. 2) implementing
//!   [`rl::QNetwork`];
//! - [`agent`]: the serial scalarized Double-DQN training loop
//!   ([`agent::TrainLoop`]) producing area-delay-specialized adder
//!   designers;
//! - [`parallel`]: the asynchronous actor/learner training system and
//!   parallel synthesis evaluation (Section IV-D);
//! - [`experiment`]: the session layer — builder-configured multi-weight
//!   sweeps over one shared cache, streaming run events, and the unified
//!   [`experiment::Runner`] behind both training paths;
//! - [`checkpoint`]: full-state save/resume with bit-identical
//!   continuation for the serial runner;
//! - [`pareto`]: Pareto-front utilities used by every figure of the paper.
//!
//! # Example
//!
//! ```
//! use prefixrl_core::prelude::*;
//!
//! // Sweep three tiny agents across scalarization weights over one
//! // shared evaluation cache, and merge their fronts (Fig. 4 shape).
//! let experiment = Experiment::builder()
//!     .n(8)
//!     .weights(Weights::linspace(0.2, 0.8, 3))
//!     .base_config(AgentConfig::tiny(8, 0.5))
//!     .eval_threads(2)
//!     .build();
//! let result = experiment.run_quiet().unwrap();
//! assert_eq!(result.records.len(), 3);
//! assert!(!result.merged_front().is_empty());
//! assert!(result.cache.hits > 0); // agents shared the cache
//! ```

#![warn(missing_docs)]

pub mod agent;
pub mod cache;
pub mod checkpoint;
pub mod env;
pub mod evalsvc;
pub mod evaluator;
pub mod experiment;
pub mod frontier;
pub mod parallel;
pub mod pareto;
pub mod qnet;
pub mod task;

/// Convenient re-exports for downstream users.
pub mod prelude {
    pub use crate::agent::{AgentConfig, TrainLoop, TrainResult};
    pub use crate::cache::{CacheConfig, CachedEvaluator, EvalCache};
    pub use crate::checkpoint::{Checkpoint, SweepCheckpoint};
    pub use crate::env::{EnvConfig, PrefixEnv};
    pub use crate::evalsvc::{evaluate_batch, EvalService};
    #[allow(deprecated)]
    pub use crate::evaluator::{AnalyticalEvaluator, SynthesisEvaluator};
    pub use crate::evaluator::{Evaluator, ObjectivePoint};
    pub use crate::experiment::{
        greedy_designs, AsyncRunner, CallbackObserver, CancelToken, ChannelObserver, Event,
        Experiment, ExperimentResult, NullObserver, RunObserver, RunRecord, Runner, SerialRunner,
        Weights,
    };
    pub use crate::frontier::{sweep_front, sweep_task_front};
    pub use crate::pareto::ParetoFront;
    pub use crate::qnet::{PrefixQNet, QNetConfig};
    pub use crate::task::{
        Adder, AnalyticalBackend, CircuitTask, Incrementer, ObjectiveBackend, PrefixOr,
        SynthesisBackend, TaskEvaluator,
    };
}
