//! Cross-path equivalence: the serial trainer, the async actor/learner
//! system, and the batch evaluation service must agree — same shared
//! policy, same evaluator semantics, same cache accounting — no matter
//! which path a design took to evaluation.

use prefix_graph::{structures, PrefixGraph};
use prefixrl_core::agent::{AgentConfig, TrainLoop};
use prefixrl_core::cache::{CacheConfig, CachedEvaluator};
use prefixrl_core::evalsvc::EvalService;
use prefixrl_core::evaluator::{Evaluator, ObjectivePoint};
use prefixrl_core::experiment::{AsyncRunner, Experiment, Weights};
use prefixrl_core::pareto::ParetoFront;
use prefixrl_core::task::{Adder, TaskEvaluator};
use std::sync::Arc;

/// The serial and async runners harvest legal designs with comparable
/// Pareto frontiers at N = 8 and N = 16: both fronts weakly improve on the
/// two episode start states (which every reset records) and explore design
/// pools of the same order of magnitude.
#[test]
fn serial_and_async_frontiers_comparable() {
    for n in [8u16, 16] {
        let mut cfg = AgentConfig::tiny(n, 0.5);
        cfg.total_steps = if n == 8 { 400 } else { 300 };
        let serial = TrainLoop::run(&cfg, Arc::new(TaskEvaluator::analytical(Adder)));
        let parallel = AsyncRunner::new(4).train(&cfg, Arc::new(TaskEvaluator::analytical(Adder)));

        for result in [&serial, &parallel] {
            assert!(result.designs.len() > 10, "n={n}: too few designs");
            for (g, _) in &result.designs {
                g.verify_legal().unwrap();
            }
        }
        let serial_front = serial.front();
        let async_front = parallel.front();
        let eval = TaskEvaluator::analytical(Adder);
        for start in [
            eval.evaluate(&PrefixGraph::ripple(n)),
            eval.evaluate(&structures::sklansky(n)),
        ] {
            for (front, path) in [(&serial_front, "serial"), (&async_front, "async")] {
                let area = front
                    .area_at_delay(start.delay)
                    .unwrap_or_else(|| panic!("n={n} {path}: start delay unreachable"));
                assert!(
                    area <= start.area,
                    "n={n} {path}: front must weakly improve on start states"
                );
            }
        }
        let (a, b) = (serial.designs.len() as f64, parallel.designs.len() as f64);
        assert!(a / b < 4.0 && b / a < 4.0, "n={n}: serial {a} vs async {b}");
    }
}

/// The acceptance workload: `train_async` at 4 actors over the sharded
/// cache on the N=8 analytical setting shows a nonzero cache hit rate
/// (start states recur on every episode reset).
#[test]
fn four_actor_training_hits_shared_cache() {
    let mut cfg = AgentConfig::tiny(8, 0.5);
    cfg.total_steps = 400;
    let cache = Arc::new(CachedEvaluator::with_config(
        TaskEvaluator::analytical(Adder),
        CacheConfig::default(),
    ));
    let result = AsyncRunner::new(4).train(&cfg, cache.clone());
    assert!(!result.designs.is_empty());
    assert!(cache.shards() >= 8, "default shard count must be ≥ 8");
    assert!(
        cache.hit_rate() > 0.0,
        "4-actor N=8 analytical training must reuse cached states \
         (hits {} / misses {})",
        cache.hits(),
        cache.misses()
    );
}

/// `evaluate_many` must equal per-graph `evaluate` through every stack
/// depth: bare evaluator, sharded cache, and EvalService with various
/// thread budgets.
#[test]
fn evaluate_many_equivalent_to_evaluate() {
    let graphs: Vec<PrefixGraph> = vec![
        PrefixGraph::ripple(16),
        structures::sklansky(16),
        structures::kogge_stone(16),
        structures::brent_kung(16),
        structures::han_carlson(16),
        structures::ladner_fischer(16),
        structures::sparse_kogge_stone(16, 4),
    ];
    let eval = TaskEvaluator::analytical(Adder);
    let reference: Vec<ObjectivePoint> = graphs.iter().map(|g| eval.evaluate(g)).collect();

    // Default trait implementation.
    assert_eq!(eval.evaluate_many(&graphs), reference);
    // Through the sharded cache.
    let cache = Arc::new(CachedEvaluator::new(TaskEvaluator::analytical(Adder)));
    assert_eq!(cache.evaluate_many(&graphs), reference);
    // Through the service at several widths, cold and warm.
    for threads in [1usize, 2, 5, 16] {
        let service = EvalService::new(cache.clone(), threads);
        assert_eq!(
            service.evaluate_many(&graphs),
            reference,
            "threads={threads}"
        );
    }
}

/// Sharded-cache hit/miss accounting stays exact under concurrent access:
/// every query is either a hit or a miss, and misses equal distinct states
/// once all threads have finished.
#[test]
fn sharded_cache_accounting_under_concurrency() {
    let cache = Arc::new(CachedEvaluator::with_config(
        TaskEvaluator::analytical(Adder),
        CacheConfig::with_shards(8),
    ));
    let graphs: Vec<PrefixGraph> = (0..6u16)
        .map(|i| {
            let mut g = PrefixGraph::ripple(12);
            g.apply(prefix_graph::Action::Add(prefix_graph::Node::new(9 - i, 2)))
                .unwrap();
            g
        })
        .collect();
    let threads = 8;
    let rounds = 5;
    std::thread::scope(|s| {
        for _ in 0..threads {
            let cache = Arc::clone(&cache);
            let graphs = graphs.clone();
            s.spawn(move || {
                for _ in 0..rounds {
                    for g in &graphs {
                        cache.evaluate(g);
                    }
                }
            });
        }
    });
    let total = (threads * rounds * graphs.len()) as u64;
    assert_eq!(cache.hits() + cache.misses(), total, "no query lost");
    assert_eq!(cache.unique_states(), graphs.len());
    // With in-flight dedup, each distinct state is evaluated exactly once.
    assert_eq!(cache.misses(), graphs.len() as u64);
    let stats = cache.shard_stats();
    assert_eq!(stats.len(), 8);
    assert_eq!(stats.iter().map(|s| s.hits + s.misses).sum::<u64>(), total);
}

/// The service front door composes with training end to end: a tiny run
/// through `EvalService` over the sharded cache produces the same design
/// pool as the cache alone (the service adds routing, not semantics).
#[test]
fn training_through_service_matches_cache_only() {
    let cfg = AgentConfig::tiny(8, 0.5);
    let direct = TrainLoop::run(
        &cfg,
        Arc::new(CachedEvaluator::new(TaskEvaluator::analytical(Adder))),
    );
    let cache = Arc::new(CachedEvaluator::new(TaskEvaluator::analytical(Adder)));
    let service = Arc::new(EvalService::new(cache.clone() as Arc<dyn Evaluator>, 2));
    let routed = TrainLoop::run(&cfg, service);
    assert_eq!(direct.designs.len(), routed.designs.len());
    let df: ParetoFront<PrefixGraph> = direct.front();
    let rf: ParetoFront<PrefixGraph> = routed.front();
    assert_eq!(df.points(), rf.points());
    assert!(cache.hits() > 0);
}

/// The session layer adds orchestration, not semantics: a single-weight
/// `Experiment` run produces exactly the designs and losses of a direct
/// `TrainLoop` run with the same configuration.
#[test]
fn experiment_single_run_matches_direct_loop() {
    let base = AgentConfig::tiny(8, 0.5);
    let exp = Experiment::builder()
        .n(8)
        .weights(Weights::single(0.5))
        .seed(0)
        .base_config(base.clone())
        .build();
    let via_experiment = exp.run_quiet().unwrap();
    // The builder applies the same weight/seed the base already has.
    let direct = TrainLoop::run(&base, Arc::new(TaskEvaluator::analytical(Adder)));
    let record = &via_experiment.records[0];
    assert_eq!(record.steps, direct.steps);
    assert_eq!(record.losses, direct.losses);
    assert_eq!(record.designs.len(), direct.designs.len());
    for ((ga, pa), (gb, pb)) in record.designs.iter().zip(&direct.designs) {
        assert_eq!(ga.canonical_key(), gb.canonical_key());
        assert_eq!(pa, pb);
    }
}
