//! Functional-equivalence acceptance tests for the circuit-task layer:
//! for every registered task, the emitted netlist must compute exactly
//! what the task's golden reference says — on regular structures *and* on
//! randomized legal graphs (the states RL actually visits), across widths.
//!
//! This is the cross-check the `prefix_or` / `incrementer` generators
//! previously lacked against the prefix-graph semantics: their unit tests
//! only exercised the classical structures.

use netlist::sim;
use prefix_graph::{structures, PrefixGraph};
use prefixrl_core::task::{self, CircuitTask};
use rand::prelude::*;

/// Applies `steps` random legal actions to `g`, yielding the kind of
/// irregular mid-episode state the environment evaluates.
fn randomized(mut g: PrefixGraph, steps: usize, rng: &mut StdRng) -> PrefixGraph {
    for _ in 0..steps {
        let actions = g.legal_actions();
        if actions.is_empty() {
            break;
        }
        let a = actions[rng.random_range(0..actions.len())];
        g.apply(a).expect("legal action applies");
    }
    g.verify_legal().expect("randomized graph stays legal");
    g
}

fn random_inputs(bits: usize, rng: &mut StdRng) -> Vec<bool> {
    (0..bits).map(|_| rng.random::<bool>()).collect()
}

/// Simulates `graph`'s task netlist on `vectors` random input assignments
/// and compares every output bit against the task reference.
fn check_against_reference(
    task: &dyn CircuitTask,
    graph: &PrefixGraph,
    vectors: usize,
    rng: &mut StdRng,
) {
    let n = graph.n();
    let nl = task.emit_netlist(graph);
    assert_eq!(nl.inputs().len(), task.input_bits(n), "{}", task.task_id());
    assert_eq!(
        nl.outputs().len(),
        task.output_bits(n),
        "{}",
        task.task_id()
    );
    for _ in 0..vectors {
        let inputs = random_inputs(task.input_bits(n), rng);
        let simulated = sim::eval(&nl, &inputs);
        let expected = task.reference(n, &inputs);
        assert_eq!(
            simulated,
            expected,
            "{} netlist diverges from reference at n={n} on {inputs:?}",
            task.task_id()
        );
    }
}

/// Every task × every regular structure × widths 6/8/16/24: simulated
/// outputs equal the reference on random vectors.
#[test]
fn all_tasks_match_reference_on_regular_structures() {
    let mut rng = StdRng::seed_from_u64(0x7a5c);
    for name in task::TASK_NAMES {
        let task = task::by_name(name).unwrap();
        for n in [6u16, 8, 16, 24] {
            for (_, ctor) in structures::all_regular() {
                check_against_reference(task.as_ref(), &ctor(n), 12, &mut rng);
            }
            check_against_reference(task.as_ref(), &PrefixGraph::ripple(n), 12, &mut rng);
        }
    }
}

/// Every task on randomized legal graphs — the states training actually
/// visits, where polarity bookkeeping in the generators is most stressed.
#[test]
fn all_tasks_match_reference_on_randomized_graphs() {
    let mut rng = StdRng::seed_from_u64(0xbeef);
    for name in task::TASK_NAMES {
        let task = task::by_name(name).unwrap();
        for n in [8u16, 16] {
            for seed_graph in [PrefixGraph::ripple(n), structures::sklansky(n)] {
                for steps in [3usize, 9, 20] {
                    let g = randomized(seed_graph.clone(), steps, &mut rng);
                    check_against_reference(task.as_ref(), &g, 10, &mut rng);
                }
            }
        }
    }
}

/// Exhaustive check at small width: every input assignment, every task,
/// on an irregular graph.
#[test]
fn all_tasks_match_reference_exhaustively_at_6b() {
    let mut rng = StdRng::seed_from_u64(42);
    let g = randomized(PrefixGraph::ripple(6), 6, &mut rng);
    for name in task::TASK_NAMES {
        let task = task::by_name(name).unwrap();
        let nl = task.emit_netlist(&g);
        let bits = task.input_bits(6);
        for x in 0..(1u64 << bits) {
            let inputs: Vec<bool> = (0..bits).map(|i| (x >> i) & 1 == 1).collect();
            assert_eq!(
                sim::eval(&nl, &inputs),
                task.reference(6, &inputs),
                "{name} diverges at input {x:#b}"
            );
        }
    }
}

/// The word-level helpers agree with the task layer on the built-in
/// tasks (adder via `sim::add`, incrementer via `increment`).
#[test]
fn word_level_helpers_agree_with_task_references() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = randomized(structures::sklansky(16), 10, &mut rng);
    let adder_nl = task::Adder.emit_netlist(&g);
    let inc_nl = task::Incrementer.emit_netlist(&g);
    for _ in 0..25 {
        let a = rng.random::<u64>() & 0xFFFF;
        let b = rng.random::<u64>() & 0xFFFF;
        assert_eq!(sim::add(&adder_nl, a, b), (a + b) as u128);
        assert_eq!(netlist::incrementer::increment(&inc_nl, a), a + 1);
        assert_eq!(netlist::incrementer::reference(a, 16), a + 1);
    }
}
