//! Session-layer acceptance tests: checkpoint/resume determinism, sweep
//! orchestration over the shared cache, and the merged-front guarantee.

use prefixrl_core::agent::{AgentConfig, TrainLoop};
use prefixrl_core::checkpoint::{Checkpoint, RunState, SweepCheckpoint};
use prefixrl_core::experiment::{Event, Experiment, NullObserver, RunObserver, Weights};
use prefixrl_core::task::{self, AnalyticalBackend, SynthesisBackend, TaskEvaluator};
use std::sync::Arc;

fn losses_and_keys(result: &prefixrl_core::agent::TrainResult) -> (Vec<f32>, Vec<Vec<u64>>) {
    (
        result.losses.clone(),
        result
            .designs
            .iter()
            .map(|(g, _)| g.canonical_key())
            .collect(),
    )
}

/// Save at step k, resume, and the continued run must emit bit-identical
/// losses and an identical design pool to an uninterrupted run.
#[test]
fn resume_is_bit_identical_to_uninterrupted_run() {
    let cfg = AgentConfig::tiny(8, 0.4);

    // Uninterrupted reference run.
    let mut reference = TrainLoop::new(&cfg, Arc::new(TaskEvaluator::analytical(task::Adder)));
    reference.run_to_completion(0, &mut NullObserver);
    let (_, reference) = reference.into_parts();

    // Interrupted run: stop at step 137, checkpoint through JSON (the
    // full save format, not just the in-memory struct), resume, finish.
    let mut interrupted = TrainLoop::new(&cfg, Arc::new(TaskEvaluator::analytical(task::Adder)));
    for _ in 0..137 {
        assert!(interrupted.step_once(0, &mut NullObserver));
    }
    let json = interrupted.checkpoint().to_json();
    drop(interrupted); // the "kill"
    let ckpt = Checkpoint::from_json(&json).unwrap();
    assert_eq!(ckpt.step, 137);
    let mut resumed =
        TrainLoop::from_checkpoint(&ckpt, Arc::new(TaskEvaluator::analytical(task::Adder)))
            .unwrap();
    resumed.run_to_completion(0, &mut NullObserver);
    let (_, resumed) = resumed.into_parts();

    assert_eq!(reference.steps, resumed.steps);
    let (ref_losses, ref_keys) = losses_and_keys(&reference);
    let (res_losses, res_keys) = losses_and_keys(&resumed);
    assert_eq!(ref_losses, res_losses, "losses diverged after resume");
    assert_eq!(ref_keys, res_keys, "design pools diverged after resume");
    for ((_, pa), (_, pb)) in reference.designs.iter().zip(&resumed.designs) {
        assert_eq!(pa, pb, "design objectives diverged after resume");
    }
    assert_eq!(reference.episode_returns, resumed.episode_returns);
}

/// Resuming must also continue the event stream correctly: the resumed
/// half emits exactly the missing steps.
#[test]
fn resume_continues_event_stream() {
    let cfg = AgentConfig::tiny(8, 0.6);
    let mut lp = TrainLoop::new(&cfg, Arc::new(TaskEvaluator::analytical(task::Adder)));
    let mut first_half = 0u64;
    let mut counter = prefixrl_core::experiment::CallbackObserver::new(|_, e: &Event| {
        if matches!(e, Event::Step { .. }) {
            first_half += 1;
        }
    });
    for _ in 0..100 {
        lp.step_once(0, &mut counter);
    }
    let _ = counter; // closure borrow of `first_half` ends here
    assert_eq!(first_half, 100);
    let ckpt = lp.checkpoint();
    let mut resumed =
        TrainLoop::from_checkpoint(&ckpt, Arc::new(TaskEvaluator::analytical(task::Adder)))
            .unwrap();
    let mut second_half = 0u64;
    let mut counter = prefixrl_core::experiment::CallbackObserver::new(|_, e: &Event| {
        if matches!(e, Event::Step { .. }) {
            second_half += 1;
        }
    });
    resumed.run_to_completion(0, &mut counter);
    let _ = counter; // closure borrow of `second_half` ends here
    assert_eq!(second_half, cfg.total_steps - 100);
}

/// The sweep's merged front must dominate-or-equal every per-agent front.
#[test]
fn merged_front_dominates_or_equals_every_agent_front() {
    let exp = Experiment::builder()
        .n(8)
        .weights(Weights::linspace(0.1, 0.9, 4))
        .base_config(AgentConfig::tiny(8, 0.5))
        .eval_threads(4)
        .build();
    let result = exp.run_quiet().unwrap();
    assert!(result.completed);
    let merged = result.merged_front();
    assert!(!merged.is_empty());
    for record in &result.records {
        let agent_front = record.front();
        assert!(
            merged.pareto_dominates(&agent_front),
            "merged front fails to cover agent {} (w = {})",
            record.run,
            record.w_area
        );
    }
    // And each agent's designs were merged, not just its front.
    let total_designs: usize = result.records.iter().map(|r| r.designs.len()).sum();
    assert!(total_designs >= merged.len());
}

/// A sweep interrupted via `halt_at` writes a sweep checkpoint from which
/// `Experiment::resume` reproduces the uninterrupted sweep's designs and
/// losses exactly (serial runner, shared cache does not affect values).
#[test]
fn sweep_resume_reproduces_uninterrupted_sweep() {
    let dir = std::env::temp_dir().join(format!("prefixrl-sweep-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt_path = dir.join("sweep.ckpt.json");

    let build = |halt: Option<u64>| {
        let mut b = Experiment::builder()
            .n(8)
            .weights(Weights::linspace(0.2, 0.8, 3))
            .base_config(AgentConfig::tiny(8, 0.5))
            .eval_threads(2)
            .checkpoint_path(ckpt_path.clone());
        if let Some(h) = halt {
            b = b.halt_at(h);
        }
        b.build()
    };

    // Reference: uninterrupted sweep.
    let reference = build(None).run_quiet().unwrap();
    assert!(reference.completed);

    // Interrupted sweep: halts every agent at step 100 (writing the sweep
    // checkpoint), then a fresh experiment resumes from the file.
    let halted = build(Some(100)).run_quiet().unwrap();
    assert!(!halted.completed);
    for r in &halted.records {
        assert_eq!(r.steps, 100, "run {} halted at the wrong step", r.run);
    }
    let sweep = SweepCheckpoint::load(&ckpt_path).unwrap();
    assert_eq!(sweep.completed_runs(), 0);
    assert!(sweep
        .runs
        .iter()
        .all(|r| matches!(r, RunState::InProgress(_))));
    let resumed = build(None).resume(sweep, &mut NullObserver).unwrap();
    assert!(resumed.completed);

    for (a, b) in reference.records.iter().zip(&resumed.records) {
        assert_eq!(a.run, b.run);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.losses, b.losses, "run {} losses diverged", a.run);
        assert_eq!(
            a.designs.len(),
            b.designs.len(),
            "run {} design pools diverged",
            a.run
        );
        for ((ga, pa), (gb, pb)) in a.designs.iter().zip(&b.designs) {
            assert_eq!(ga.canonical_key(), gb.canonical_key());
            assert_eq!(pa, pb);
        }
        assert_eq!(a.episode_returns, b.episode_returns);
    }
    // The final sweep checkpoint marks every run done.
    let final_sweep = SweepCheckpoint::load(&ckpt_path).unwrap();
    assert_eq!(final_sweep.completed_runs(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

/// Periodic checkpointing via `checkpoint_every` emits `CheckpointSaved`
/// events and keeps the persisted file loadable mid-run.
#[test]
fn periodic_checkpoints_stream_events() {
    struct CkptCounter {
        saves: usize,
    }
    impl RunObserver for CkptCounter {
        fn on_event(&mut self, _run: usize, event: &Event) {
            if matches!(event, Event::CheckpointSaved { .. }) {
                self.saves += 1;
            }
        }
    }
    let exp = Experiment::builder()
        .n(8)
        .weights(Weights::single(0.5))
        .base_config(AgentConfig::tiny(8, 0.5))
        .checkpoint_every(100)
        .build();
    let mut obs = CkptCounter { saves: 0 };
    let result = exp.run(&mut obs).unwrap();
    assert!(result.completed);
    // 300 steps, checkpoint at 100 and 200 (not at 300: run is done).
    assert_eq!(obs.saves, 2);
}

/// Non-adder tasks run end to end through the session layer and stamp
/// their identity on the result.
#[test]
fn prefix_or_and_incrementer_sessions_run_end_to_end() {
    for name in ["prefix-or", "incrementer"] {
        let exp = Experiment::builder()
            .n(8)
            .task(task::by_name(name).unwrap())
            .backend(Arc::new(AnalyticalBackend))
            .weights(Weights::single(0.5))
            .base_config(AgentConfig::tiny(8, 0.5))
            .build();
        let result = exp.run_quiet().unwrap();
        assert!(result.completed, "{name}");
        assert_eq!(result.task, name);
        assert_eq!(result.backend, "analytical");
        assert_eq!(result.evaluator, format!("{name}/analytical"));
        assert!(!result.records[0].designs.is_empty(), "{name}");
        assert!(
            result.frontier_power.is_none(),
            "analytical never annotates"
        );
        let json = result.to_json(false);
        assert_eq!(
            json.get("task").unwrap(),
            &serde_json::Value::String(name.into())
        );
    }
}

/// A sweep checkpoint written for one task refuses to resume an experiment
/// configured for another, at both the sweep and the per-run level.
#[test]
fn sweep_resume_refuses_task_mismatch() {
    // Record a genuine in-progress adder checkpoint.
    let cfg = AgentConfig::tiny(8, 0.5);
    let mut lp = TrainLoop::new(&cfg, Arc::new(TaskEvaluator::analytical(task::Adder)));
    for _ in 0..10 {
        lp.step_once(0, &mut NullObserver);
    }
    let mut sweep = SweepCheckpoint::fresh("adder", 1);
    sweep.runs[0] = RunState::InProgress(Box::new(lp.checkpoint()));
    sweep.validate().unwrap();

    let or_exp = Experiment::builder()
        .n(8)
        .task(task::by_name("prefix-or").unwrap())
        .weights(Weights::single(0.5))
        .base_config(AgentConfig::tiny(8, 0.5))
        .build();
    let err = match or_exp.resume(sweep, &mut NullObserver) {
        Err(e) => e,
        Ok(_) => panic!("task mismatch must be rejected"),
    };
    assert!(
        err.contains("task `adder`") && err.contains("task `prefix-or`"),
        "{err}"
    );
}

/// The synthesis-power backend annotates every merged-frontier point with
/// a positive switching-power estimate, surfaced in the JSON report.
#[test]
fn power_annotation_surfaces_in_result_and_json() {
    let mut cfg = AgentConfig::tiny(8, 0.5);
    cfg.total_steps = 40;
    cfg.env = prefixrl_core::env::EnvConfig::synthesis(8);
    let exp = Experiment::builder()
        .n(8)
        .backend(Arc::new(
            SynthesisBackend::new(
                netlist::Library::nangate45(),
                synth::sweep::SweepConfig::fast(),
                0.5,
            )
            .with_power_annotation(),
        ))
        .weights(Weights::single(0.5))
        .base_config(cfg)
        .build();
    let result = exp.run_quiet().unwrap();
    assert_eq!(result.backend, "synthesis-power");
    let powers = result.frontier_power.as_ref().expect("annotated");
    let merged = result.merged_front();
    assert_eq!(powers.len(), merged.len());
    assert!(powers.iter().all(|&p| p > 0.0));
    let json = result.to_json(false);
    let frontier = json.get("merged_frontier").unwrap().as_array().unwrap();
    assert!(!frontier.is_empty());
    for entry in frontier {
        match entry.get("power_uw").expect("power stamped per point") {
            serde_json::Value::Number(n) => assert!(n.as_f64() > 0.0),
            other => panic!("power_uw must be a number, got {other:?}"),
        }
    }
}

/// The deprecated raw-oracle override must stamp reports with the
/// override's own name — never the unused default backend — and must not
/// produce backend annotations.
#[test]
#[allow(deprecated)]
fn deprecated_oracle_override_stamps_its_own_name() {
    let exp = Experiment::builder()
        .n(8)
        .base_config(AgentConfig::tiny(8, 0.5))
        .evaluator(Box::new(TaskEvaluator::analytical(task::Adder)))
        .build();
    let result = exp.run_quiet().unwrap();
    assert_eq!(result.backend, "adder/analytical");
    assert_eq!(result.task, "adder");
    assert!(result.frontier_power.is_none());
}
