//! Session-layer acceptance tests: checkpoint/resume determinism, sweep
//! orchestration over the shared cache, and the merged-front guarantee.

use prefixrl_core::agent::{AgentConfig, TrainLoop};
use prefixrl_core::checkpoint::{Checkpoint, RunState, SweepCheckpoint};
use prefixrl_core::evaluator::AnalyticalEvaluator;
use prefixrl_core::experiment::{Event, Experiment, NullObserver, RunObserver, Weights};
use std::sync::Arc;

fn losses_and_keys(result: &prefixrl_core::agent::TrainResult) -> (Vec<f32>, Vec<Vec<u64>>) {
    (
        result.losses.clone(),
        result
            .designs
            .iter()
            .map(|(g, _)| g.canonical_key())
            .collect(),
    )
}

/// Save at step k, resume, and the continued run must emit bit-identical
/// losses and an identical design pool to an uninterrupted run.
#[test]
fn resume_is_bit_identical_to_uninterrupted_run() {
    let cfg = AgentConfig::tiny(8, 0.4);

    // Uninterrupted reference run.
    let mut reference = TrainLoop::new(&cfg, Arc::new(AnalyticalEvaluator));
    reference.run_to_completion(0, &mut NullObserver);
    let (_, reference) = reference.into_parts();

    // Interrupted run: stop at step 137, checkpoint through JSON (the
    // full save format, not just the in-memory struct), resume, finish.
    let mut interrupted = TrainLoop::new(&cfg, Arc::new(AnalyticalEvaluator));
    for _ in 0..137 {
        assert!(interrupted.step_once(0, &mut NullObserver));
    }
    let json = interrupted.checkpoint().to_json();
    drop(interrupted); // the "kill"
    let ckpt = Checkpoint::from_json(&json).unwrap();
    assert_eq!(ckpt.step, 137);
    let mut resumed = TrainLoop::from_checkpoint(&ckpt, Arc::new(AnalyticalEvaluator)).unwrap();
    resumed.run_to_completion(0, &mut NullObserver);
    let (_, resumed) = resumed.into_parts();

    assert_eq!(reference.steps, resumed.steps);
    let (ref_losses, ref_keys) = losses_and_keys(&reference);
    let (res_losses, res_keys) = losses_and_keys(&resumed);
    assert_eq!(ref_losses, res_losses, "losses diverged after resume");
    assert_eq!(ref_keys, res_keys, "design pools diverged after resume");
    for ((_, pa), (_, pb)) in reference.designs.iter().zip(&resumed.designs) {
        assert_eq!(pa, pb, "design objectives diverged after resume");
    }
    assert_eq!(reference.episode_returns, resumed.episode_returns);
}

/// Resuming must also continue the event stream correctly: the resumed
/// half emits exactly the missing steps.
#[test]
fn resume_continues_event_stream() {
    let cfg = AgentConfig::tiny(8, 0.6);
    let mut lp = TrainLoop::new(&cfg, Arc::new(AnalyticalEvaluator));
    let mut first_half = 0u64;
    let mut counter = prefixrl_core::experiment::CallbackObserver::new(|_, e: &Event| {
        if matches!(e, Event::Step { .. }) {
            first_half += 1;
        }
    });
    for _ in 0..100 {
        lp.step_once(0, &mut counter);
    }
    let _ = counter; // closure borrow of `first_half` ends here
    assert_eq!(first_half, 100);
    let ckpt = lp.checkpoint();
    let mut resumed = TrainLoop::from_checkpoint(&ckpt, Arc::new(AnalyticalEvaluator)).unwrap();
    let mut second_half = 0u64;
    let mut counter = prefixrl_core::experiment::CallbackObserver::new(|_, e: &Event| {
        if matches!(e, Event::Step { .. }) {
            second_half += 1;
        }
    });
    resumed.run_to_completion(0, &mut counter);
    let _ = counter; // closure borrow of `second_half` ends here
    assert_eq!(second_half, cfg.total_steps - 100);
}

/// The sweep's merged front must dominate-or-equal every per-agent front.
#[test]
fn merged_front_dominates_or_equals_every_agent_front() {
    let exp = Experiment::builder()
        .n(8)
        .weights(Weights::linspace(0.1, 0.9, 4))
        .base_config(AgentConfig::tiny(8, 0.5))
        .eval_threads(4)
        .build();
    let result = exp.run_quiet().unwrap();
    assert!(result.completed);
    let merged = result.merged_front();
    assert!(!merged.is_empty());
    for record in &result.records {
        let agent_front = record.front();
        assert!(
            merged.pareto_dominates(&agent_front),
            "merged front fails to cover agent {} (w = {})",
            record.run,
            record.w_area
        );
    }
    // And each agent's designs were merged, not just its front.
    let total_designs: usize = result.records.iter().map(|r| r.designs.len()).sum();
    assert!(total_designs >= merged.len());
}

/// A sweep interrupted via `halt_at` writes a sweep checkpoint from which
/// `Experiment::resume` reproduces the uninterrupted sweep's designs and
/// losses exactly (serial runner, shared cache does not affect values).
#[test]
fn sweep_resume_reproduces_uninterrupted_sweep() {
    let dir = std::env::temp_dir().join(format!("prefixrl-sweep-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt_path = dir.join("sweep.ckpt.json");

    let build = |halt: Option<u64>| {
        let mut b = Experiment::builder()
            .n(8)
            .weights(Weights::linspace(0.2, 0.8, 3))
            .base_config(AgentConfig::tiny(8, 0.5))
            .eval_threads(2)
            .checkpoint_path(ckpt_path.clone());
        if let Some(h) = halt {
            b = b.halt_at(h);
        }
        b.build()
    };

    // Reference: uninterrupted sweep.
    let reference = build(None).run_quiet().unwrap();
    assert!(reference.completed);

    // Interrupted sweep: halts every agent at step 100 (writing the sweep
    // checkpoint), then a fresh experiment resumes from the file.
    let halted = build(Some(100)).run_quiet().unwrap();
    assert!(!halted.completed);
    for r in &halted.records {
        assert_eq!(r.steps, 100, "run {} halted at the wrong step", r.run);
    }
    let sweep = SweepCheckpoint::load(&ckpt_path).unwrap();
    assert_eq!(sweep.completed_runs(), 0);
    assert!(sweep
        .runs
        .iter()
        .all(|r| matches!(r, RunState::InProgress(_))));
    let resumed = build(None).resume(sweep, &mut NullObserver).unwrap();
    assert!(resumed.completed);

    for (a, b) in reference.records.iter().zip(&resumed.records) {
        assert_eq!(a.run, b.run);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.losses, b.losses, "run {} losses diverged", a.run);
        assert_eq!(
            a.designs.len(),
            b.designs.len(),
            "run {} design pools diverged",
            a.run
        );
        for ((ga, pa), (gb, pb)) in a.designs.iter().zip(&b.designs) {
            assert_eq!(ga.canonical_key(), gb.canonical_key());
            assert_eq!(pa, pb);
        }
        assert_eq!(a.episode_returns, b.episode_returns);
    }
    // The final sweep checkpoint marks every run done.
    let final_sweep = SweepCheckpoint::load(&ckpt_path).unwrap();
    assert_eq!(final_sweep.completed_runs(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

/// Periodic checkpointing via `checkpoint_every` emits `CheckpointSaved`
/// events and keeps the persisted file loadable mid-run.
#[test]
fn periodic_checkpoints_stream_events() {
    struct CkptCounter {
        saves: usize,
    }
    impl RunObserver for CkptCounter {
        fn on_event(&mut self, _run: usize, event: &Event) {
            if matches!(event, Event::CheckpointSaved { .. }) {
                self.saves += 1;
            }
        }
    }
    let exp = Experiment::builder()
        .n(8)
        .weights(Weights::single(0.5))
        .base_config(AgentConfig::tiny(8, 0.5))
        .checkpoint_every(100)
        .build();
    let mut obs = CkptCounter { saves: 0 };
    let result = exp.run(&mut obs).unwrap();
    assert!(result.completed);
    // 300 steps, checkpoint at 100 and 200 (not at 300: run is done).
    assert_eq!(obs.saves, 2);
}
