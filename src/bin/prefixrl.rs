//! The `prefixrl` command-line tool: train agents, sweep weight schedules,
//! evaluate and render prefix-adder designs, and export Verilog, without
//! writing any code.
//!
//! ```text
//! prefixrl structures --n 32                         # survey regular adders
//! prefixrl train --n 8 --w 0.5 --steps 2000          # train one agent
//! prefixrl sweep --n 8 --weights 5 --steps 300       # 5-agent weight sweep
//! prefixrl eval --structure sklansky --n 32 --lib tech8
//! prefixrl render --structure brent_kung --n 16 --dot
//! prefixrl verilog --structure kogge_stone --n 16 --target 0.3
//! ```
//!
//! `train` and `sweep` are both [`Experiment`] sessions: they share the
//! evaluation stack, the checkpoint format (`--checkpoint` /
//! `--checkpoint-every` / `--resume`), and the `prefixrl.experiment.v1`
//! JSON report schema (DESIGN.md §10).

use prefixrl::prelude::*;
use prefixrl_serve::{Client, JobSpec, Router, ServeConfig, Server, Topology};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The default serve/client address of the `prefixrl.serve.v1` socket.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7878";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
        return;
    };
    let opts = parse_opts(rest);
    match cmd.as_str() {
        "structures" => cmd_structures(&opts),
        "train" => cmd_train(&opts),
        "sweep" => cmd_sweep(&opts),
        "eval" => cmd_eval(&opts),
        "render" => cmd_render(&opts),
        "verilog" => cmd_verilog(&opts),
        "serve" => cmd_serve(&opts),
        "submit" => cmd_submit(&opts),
        "status" => cmd_status(&opts),
        "cancel" => cmd_cancel(&opts),
        "frontier" => cmd_frontier(&opts),
        "query" => cmd_query(&opts),
        "shutdown" => cmd_shutdown(&opts),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command `{other}`");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "prefixrl — deep-RL prefix-adder design (PrefixRL, DAC 2021 reproduction)\n\
         \n\
         COMMANDS (each accepts --help for its full option list)\n\
         \x20 structures   survey the regular adder structures\n\
         \x20 train        train one PrefixRL agent and report its Pareto frontier\n\
         \x20 sweep        train one agent per scalarization weight over a shared\n\
         \x20              evaluation cache and merge their fronts (paper Fig. 4)\n\
         \x20 eval         synthesize a structure across delay targets\n\
         \x20 render       draw a prefix graph (ASCII, or Graphviz with --dot)\n\
         \x20 verilog      emit (optionally timing-optimized) structural Verilog\n\
         \n\
         SERVICE (prefixrl.serve.v1 over a local TCP socket, DESIGN.md §13)\n\
         \x20 serve        run the resident multi-job optimization service\n\
         \x20 submit       enqueue a sweep job on a running server\n\
         \x20 status       one job's status (--id) or the full job list\n\
         \x20 cancel       cancel a queued or running job\n\
         \x20 frontier     fetch the stored merged front of a (task, backend, n) key\n\
         \x20 query        best-at-delay / best-at-weight / delay-range lookups\n\
         \x20              against the server's lock-free read snapshot\n\
         \x20 shutdown     ask the server to stop gracefully"
    );
}

fn wants_help(opts: &HashMap<String, String>) -> bool {
    opts.contains_key("help") || opts.contains_key("-h") || opts.contains_key("h")
}

fn parse_opts(rest: &[String]) -> HashMap<String, String> {
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i].trim_start_matches("--").to_string();
        if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
            opts.insert(key, rest[i + 1].clone());
            i += 2;
        } else {
            opts.insert(key, "true".to_string());
            i += 1;
        }
    }
    opts
}

/// Parses `--key value`, exiting with a clear diagnostic on a malformed
/// value (a silent fallback to the default would mask typos like
/// `--steps abc`).
fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    match opts.get(key) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!(
                "error: invalid value `{raw}` for --{key} (expected {})",
                friendly_type_name::<T>()
            );
            std::process::exit(2);
        }),
    }
}

/// Like [`get`] but with no default: `None` when the flag is absent.
fn get_opt<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str) -> Option<T> {
    opts.get(key).map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!(
                "error: invalid value `{raw}` for --{key} (expected {})",
                friendly_type_name::<T>()
            );
            std::process::exit(2);
        })
    })
}

/// Parses a worker-count flag, clamping `0` to `1` with a loud warning —
/// a zero here would silently spin zero workers and hang or no-op the
/// session (mirrors the PR 2 malformed-value policy of never failing
/// silently).
fn get_workers(opts: &HashMap<String, String>, key: &str, default: usize) -> usize {
    let v: usize = get(opts, key, default);
    if v == 0 {
        eprintln!("warning: --{key} 0 would spin zero workers; clamping to 1");
        return 1;
    }
    v
}

fn friendly_type_name<T>() -> &'static str {
    let full = std::any::type_name::<T>();
    match full {
        "u8" | "u16" | "u32" | "u64" | "usize" => "a non-negative integer",
        "i8" | "i16" | "i32" | "i64" | "isize" => "an integer",
        "f32" | "f64" => "a number",
        _ => full,
    }
}

fn library(opts: &HashMap<String, String>) -> Library {
    match opts.get("lib").map(String::as_str) {
        Some("tech8") => Library::tech8(),
        Some("nangate45") | None => Library::nangate45(),
        Some(other) => {
            eprintln!("error: unknown library `{other}` (expected nangate45|tech8)");
            std::process::exit(2);
        }
    }
}

fn structure(name: &str, n: u16) -> PrefixGraph {
    match name {
        "ripple" => PrefixGraph::ripple(n),
        "sklansky" => structures::sklansky(n),
        "kogge_stone" => structures::kogge_stone(n),
        "brent_kung" => structures::brent_kung(n),
        "han_carlson" => structures::han_carlson(n),
        "ladner_fischer" => structures::ladner_fischer(n),
        other => {
            if let Some(s) = other.strip_prefix("sparse_ks_") {
                return structures::sparse_kogge_stone(n, s.parse().expect("sparsity"));
            }
            eprintln!("unknown structure `{other}`");
            std::process::exit(2);
        }
    }
}

fn cmd_structures(opts: &HashMap<String, String>) {
    if wants_help(opts) {
        eprintln!(
            "prefixrl structures — survey the regular adder structures\n\
             \n\
             OPTIONS\n\
             \x20 --n <N>                input width (default 16)\n\
             \x20 --lib nangate45|tech8  cell library (default nangate45)"
        );
        return;
    }
    let n: u16 = get(opts, "n", 16);
    let lib = library(opts);
    println!(
        "{:<16} {:>6} {:>6} {:>7} {:>10} {:>10} {:>11} {:>11}",
        "structure", "size", "depth", "fanout", "ana.area", "ana.delay", "syn.area", "syn.delay"
    );
    for (name, ctor) in structures::all_regular() {
        let g = ctor(n);
        let ana = prefix_graph::analytical::evaluate(&g);
        let curve = synth::sweep::sweep_graph(&g, &lib, &SweepConfig::fast());
        let d = curve.min_delay();
        println!(
            "{name:<16} {:>6} {:>6} {:>7} {:>10.1} {:>10.2} {:>11.1} {:>11.3}",
            g.size(),
            g.depth(),
            g.max_fanout(),
            ana.area,
            ana.delay,
            curve.area_at(d),
            d
        );
    }
}

fn session_options_help() -> &'static str {
    "\x20 --steps <K>              environment steps per agent (default 2000)\n\
     \x20 --seed <S>               master seed; agent i trains with S+i (default 0)\n\
     \x20 --task adder|prefix-or|incrementer\n\
     \x20                          circuit task to optimize (default adder);\n\
     \x20                          any parallel prefix computation shares the\n\
     \x20                          same MDP, only the emitted netlist differs\n\
     \x20 --backend analytical|synthesis|synthesis-power\n\
     \x20                          objective backend scoring the task's circuit\n\
     \x20                          (default synthesis; synthesis-power also\n\
     \x20                          annotates frontier points with estimated\n\
     \x20                          switching power, off the reward path)\n\
     \x20 --evaluator <name>       deprecated alias for --backend\n\
     \x20 --lib nangate45|tech8    cell library for synthesis rewards\n\
     \x20 --actors <A>             async actor threads per agent (default 1 =\n\
     \x20                          deterministic serial runner; >1 disables\n\
     \x20                          checkpointing)\n\
     \x20 --no-broker              with --actors > 1: run greedy forwards\n\
     \x20                          per-actor instead of batching them through\n\
     \x20                          the cross-actor inference broker (same\n\
     \x20                          trajectories, lower decision throughput)\n\
     \x20 --eval-threads <T>       EvalService thread budget; sweeps also fan\n\
     \x20                          agents out over this many threads\n\
     \x20 --nn-threads <T>         Q-network compute threads (GEMM panels;\n\
     \x20                          default 1; results are bit-identical at\n\
     \x20                          every setting)\n\
     \x20 --cache-shards <S>       shared evaluation cache shards (default 16)\n\
     \x20 --checkpoint <path>      persist a sweep checkpoint to this file\n\
     \x20 --checkpoint-every <K>   capture a checkpoint every K steps per agent\n\
     \x20 --resume <path>          resume from a sweep checkpoint file\n\
     \x20 --halt-at <K>            stop each agent at step K after checkpointing\n\
     \x20                          (interrupt/resume testing; implies --checkpoint)\n\
     \x20 --progress               stream episode/checkpoint events to stderr\n\
     \x20 --json                   print the prefixrl.experiment.v1 report\n\
     \x20 --out <file>             write the report (with graphs) to a file"
}

fn cmd_train(opts: &HashMap<String, String>) {
    if wants_help(opts) {
        eprintln!(
            "prefixrl train — train one PrefixRL agent and report its Pareto frontier\n\
             \n\
             OPTIONS\n\
             \x20 --n <N>                  input width (default 8)\n\
             \x20 --w <w_area>             scalarization weight in [0,1] (default 0.5)\n{}",
            session_options_help()
        );
        return;
    }
    let w: f64 = get(opts, "w", 0.5);
    if !(0.0..=1.0).contains(&w) {
        eprintln!("error: --w must lie in [0, 1], got {w}");
        std::process::exit(2);
    }
    run_session(opts, Weights::single(w));
}

fn cmd_sweep(opts: &HashMap<String, String>) {
    if wants_help(opts) {
        eprintln!(
            "prefixrl sweep — train one agent per scalarization weight over one\n\
             shared evaluation cache and merge their design fronts (paper Fig. 4:\n\
             15 agents over w_area in [0.10, 0.99])\n\
             \n\
             OPTIONS\n\
             \x20 --n <N>                  input width (default 8)\n\
             \x20 --weights <K>            number of linspaced agents (default 5)\n\
             \x20 --w-min <w>              first weight (default 0.10)\n\
             \x20 --w-max <w>              last weight (default 0.99)\n\
             \x20 --w-list <w1,w2,...>     explicit weight list (overrides the above)\n{}",
            session_options_help()
        );
        return;
    }
    run_session(opts, parse_weights(opts));
}

/// Parses the sweep weight schedule (`--w-list`, or `--weights`/`--w-min`/
/// `--w-max` linspace), exiting loudly on malformed values or duplicate
/// weights — a duplicate would burn a sweep slot and double-count designs
/// in the merged front, so it is rejected rather than silently deduped
/// (linspace collapses float-equal points itself).
fn parse_weights(opts: &HashMap<String, String>) -> Weights {
    match opts.get("w-list") {
        Some(list) => {
            let ws: Vec<f64> = list
                .split(',')
                .map(|tok| {
                    tok.trim().parse().unwrap_or_else(|_| {
                        eprintln!("error: invalid weight `{tok}` in --w-list (expected a number)");
                        std::process::exit(2);
                    })
                })
                .collect();
            Weights::try_list(ws).unwrap_or_else(|e| {
                eprintln!("error: --w-list: {e}");
                std::process::exit(2);
            })
        }
        None => {
            let k: usize = get(opts, "weights", 5);
            let lo: f64 = get(opts, "w-min", 0.10);
            let hi: f64 = get(opts, "w-max", 0.99);
            if k == 0 || !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
                eprintln!(
                    "error: need --weights >= 1 and 0 <= --w-min <= --w-max <= 1 \
                     (got {k} over [{lo}, {hi}])"
                );
                std::process::exit(2);
            }
            Weights::linspace(lo, hi, k)
        }
    }
}

/// Streams sweep events to stderr (`--progress`): one line per finished
/// episode and per checkpoint.
struct ProgressObserver;

impl RunObserver for ProgressObserver {
    fn on_event(&mut self, run: usize, event: &Event) {
        match event {
            Event::EpisodeEnd {
                episode,
                scalarized_return,
            } => eprintln!("[agent {run}] episode {episode}: return {scalarized_return:+.3}"),
            Event::CheckpointSaved { step } => {
                eprintln!("[agent {run}] checkpoint at step {step}")
            }
            _ => {}
        }
    }
}

/// Resolves `--task`, erroring loudly with the valid names on an unknown
/// value (no silent default past typos).
fn circuit_task(opts: &HashMap<String, String>) -> Arc<dyn CircuitTask> {
    let name = opts.get("task").map(String::as_str).unwrap_or("adder");
    prefixrl_core::task::by_name(name).unwrap_or_else(|| {
        eprintln!(
            "error: unknown task `{name}` (expected one of: {})",
            prefixrl_core::task::TASK_NAMES.join("|")
        );
        std::process::exit(2);
    })
}

/// Resolves `--backend` (with `--evaluator` as a deprecated alias),
/// erroring loudly with the valid names on an unknown value.
fn objective_backend(
    opts: &HashMap<String, String>,
    median_w: f64,
) -> (Arc<dyn ObjectiveBackend>, bool) {
    let name = match (opts.get("backend"), opts.get("evaluator")) {
        (Some(b), _) => b.as_str(),
        (None, Some(e)) => {
            eprintln!("warning: --evaluator is deprecated; use --backend {e}");
            e.as_str()
        }
        (None, None) => "synthesis",
    };
    // One backend instance is shared by every agent so the IV-D cache
    // sharing happens; the synthesis curve point is picked at the sweep's
    // median weight (see DESIGN.md §10).
    match name {
        "analytical" => (Arc::new(AnalyticalBackend), false),
        "synthesis" => (
            Arc::new(SynthesisBackend::new(
                library(opts),
                SweepConfig::fast(),
                median_w,
            )),
            true,
        ),
        "synthesis-power" => (
            Arc::new(
                SynthesisBackend::new(library(opts), SweepConfig::fast(), median_w)
                    .with_power_annotation(),
            ),
            true,
        ),
        other => {
            eprintln!(
                "error: unknown backend `{other}` (expected one of: {})",
                prefixrl_core::task::BACKEND_NAMES.join("|")
            );
            std::process::exit(2);
        }
    }
}

/// The shared `train`/`sweep` session driver: builds the [`Experiment`],
/// runs or resumes it, and emits the unified report.
fn run_session(opts: &HashMap<String, String>, weights: Weights) {
    let n: u16 = get(opts, "n", 8);
    let steps: u64 = get(opts, "steps", 2000);
    let seed: u64 = get(opts, "seed", 0);
    let actors = get_workers(opts, "actors", 1);
    let default_threads = weights.len().max(actors);
    let eval_threads = get_workers(opts, "eval-threads", default_threads);
    let nn_threads = opts
        .contains_key("nn-threads")
        .then(|| get_workers(opts, "nn-threads", 1));
    let cache_shards: usize = get(opts, "cache-shards", 16).max(1);
    let json_mode = opts.contains_key("json");
    let task = circuit_task(opts);
    let median_w = weights.values()[weights.len() / 2];
    let (backend, use_synth) = objective_backend(opts, median_w);

    let mut base = AgentConfig::small(n, 0.5, steps);
    if use_synth {
        base.env = prefixrl_core::env::EnvConfig::synthesis(n);
    }

    let mut builder = Experiment::builder()
        .n(n)
        .weights(weights.clone())
        .steps(steps)
        .seed(seed)
        .base_config(base)
        .task(Arc::clone(&task))
        .backend(Arc::clone(&backend))
        .actors(actors)
        .batched_inference(!opts.contains_key("no-broker"))
        .eval_threads(eval_threads)
        .cache_shards(cache_shards);
    if let Some(t) = nn_threads {
        builder = builder.nn_threads(t);
    }
    if let Some(every) = get_opt::<u64>(opts, "checkpoint-every") {
        builder = builder.checkpoint_every(every);
    }
    let halt_at = get_opt::<u64>(opts, "halt-at");
    if let Some(halt) = halt_at {
        builder = builder.halt_at(halt);
    }
    let checkpoint_path: Option<PathBuf> = opts
        .get("checkpoint")
        .map(PathBuf::from)
        .or_else(|| opts.get("resume").map(PathBuf::from));
    if halt_at.is_some() && checkpoint_path.is_none() {
        eprintln!("error: --halt-at requires --checkpoint <path> (or --resume)");
        std::process::exit(2);
    }
    if actors > 1
        && (halt_at.is_some()
            || checkpoint_path.is_some()
            || opts.contains_key("checkpoint-every")
            || opts.contains_key("resume"))
    {
        eprintln!(
            "error: checkpointing (--checkpoint/--checkpoint-every/--resume/--halt-at) \
             requires the deterministic serial runner; drop --actors or set it to 1"
        );
        std::process::exit(2);
    }
    if let Some(path) = &checkpoint_path {
        builder = builder.checkpoint_path(path.clone());
    }
    let experiment = builder.build();

    if !json_mode {
        eprintln!(
            "{} {n}b agent(s): task={}, backend={}, weights {:?}, {steps} steps \
             each, actors={actors}, eval-threads={eval_threads}, nn-threads={}, \
             cache-shards={cache_shards}",
            if weights.len() > 1 {
                "sweeping"
            } else {
                "training"
            },
            task.task_id(),
            backend.backend_id(),
            weights
                .values()
                .iter()
                .map(|w| (w * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            nn_threads.unwrap_or_else(prefixrl::nn::compute::threads),
        );
    }

    let mut progress = ProgressObserver;
    let mut null = NullObserver;
    let observer: &mut dyn RunObserver = if opts.contains_key("progress") {
        &mut progress
    } else {
        &mut null
    };

    let outcome = match opts.get("resume") {
        Some(path) => {
            let sweep = SweepCheckpoint::load(Path::new(path)).unwrap_or_else(|e| {
                eprintln!("error: cannot resume: {e}");
                std::process::exit(1);
            });
            if !json_mode {
                eprintln!(
                    "resuming from {path}: {}/{} runs already complete",
                    sweep.completed_runs(),
                    sweep.runs.len()
                );
            }
            experiment.resume(sweep, observer)
        }
        None => experiment.run(observer),
    };
    let result = outcome.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    if json_mode {
        println!(
            "{}",
            serde_json::to_string_pretty(&result.to_json(false)).unwrap()
        );
    } else {
        report_human(&result);
    }
    if let Some(path) = opts.get("out") {
        let report = serde_json::to_string_pretty(&result.to_json(true)).unwrap();
        std::fs::write(path, report).unwrap_or_else(|e| {
            eprintln!("error: write {path}: {e}");
            std::process::exit(1);
        });
        if !json_mode {
            println!("\nwrote prefixrl.experiment.v1 report to {path}");
        }
    }
}

fn report_human(result: &ExperimentResult) {
    let merged = result.merged_front();
    println!(
        "{} in {:.1}s ({:.1} steps/s): {} agent(s) on task {} ({}), cache hit \
         rate {:.0}% over {} shards",
        if result.completed { "done" } else { "halted" },
        result.elapsed_sec,
        result.total_steps() as f64 / result.elapsed_sec.max(1e-9),
        result.records.len(),
        result.task,
        result.backend,
        100.0 * result.cache.hit_rate,
        result.cache.shards,
    );
    println!(
        "\n{:>5} {:>8} {:>8} {:>9} {:>10} {:>9}",
        "agent", "w_area", "designs", "frontier", "grad steps", "episodes"
    );
    for r in &result.records {
        println!(
            "{:>5} {:>8.3} {:>8} {:>9} {:>10} {:>9}",
            r.run,
            r.w_area,
            r.designs.len(),
            r.front().len(),
            r.losses.len(),
            r.episode_returns.len()
        );
    }
    println!("\nmerged Pareto frontier ({} points):", merged.len());
    let powers = result.frontier_power.as_deref();
    if powers.is_some() {
        println!(
            "{:>10} {:>10}  {:>5} {:>5} {:>10}",
            "area", "delay", "size", "depth", "power(uW)"
        );
    } else {
        println!(
            "{:>10} {:>10}  {:>5} {:>5}",
            "area", "delay", "size", "depth"
        );
    }
    for (i, (p, g)) in merged.iter().enumerate() {
        match powers.and_then(|ps| ps.get(i)) {
            Some(power) => println!(
                "{:>10.2} {:>10.3}  {:>5} {:>5} {:>10.2}",
                p.area,
                p.delay,
                g.size(),
                g.depth(),
                power
            ),
            None => println!(
                "{:>10.2} {:>10.3}  {:>5} {:>5}",
                p.area,
                p.delay,
                g.size(),
                g.depth()
            ),
        }
    }
}

fn cmd_eval(opts: &HashMap<String, String>) {
    if wants_help(opts) {
        eprintln!(
            "prefixrl eval — synthesize a structure across delay targets\n\
             \n\
             OPTIONS\n\
             \x20 --structure <name>     ripple|sklansky|kogge_stone|brent_kung|\n\
             \x20                        han_carlson|ladner_fischer|sparse_ks_<k>\n\
             \x20 --n <N>                input width (default 16)\n\
             \x20 --targets <T>          delay targets to sweep (default 8)\n\
             \x20 --lib nangate45|tech8  cell library (default nangate45)"
        );
        return;
    }
    let n: u16 = get(opts, "n", 16);
    let name = opts
        .get("structure")
        .cloned()
        .unwrap_or_else(|| "sklansky".into());
    let targets: usize = get(opts, "targets", 8);
    let lib = library(opts);
    let g = structure(&name, n);
    let cfg = SweepConfig {
        target_fractions: prefixrl_core::frontier::target_fractions(targets),
        ..SweepConfig::paper()
    };
    let curve = synth::sweep::sweep_graph(&g, &lib, &cfg);
    println!(
        "{name} {n}b on {} ({} graph nodes, depth {}):",
        lib.name(),
        g.size(),
        g.depth()
    );
    println!("{:>12} {:>12}", "delay(ns)", "area(um^2)");
    for (d, a) in curve.knots() {
        println!("{d:>12.4} {a:>12.2}");
    }
}

fn cmd_render(opts: &HashMap<String, String>) {
    if wants_help(opts) {
        eprintln!(
            "prefixrl render — draw a prefix graph\n\
             \n\
             OPTIONS\n\
             \x20 --structure <name>  structure to draw (default brent_kung)\n\
             \x20 --n <N>             input width (default 16)\n\
             \x20 --dot               emit Graphviz instead of ASCII"
        );
        return;
    }
    let n: u16 = get(opts, "n", 16);
    let name = opts
        .get("structure")
        .cloned()
        .unwrap_or_else(|| "brent_kung".into());
    let g = structure(&name, n);
    if opts.contains_key("dot") {
        print!("{}", prefix_graph::render::dot(&g));
    } else {
        print!("{}", prefix_graph::render::ascii(&g));
    }
}

fn serve_client(opts: &HashMap<String, String>) -> Client {
    Client::new(
        opts.get("addr")
            .cloned()
            .unwrap_or_else(|| DEFAULT_SERVE_ADDR.to_string()),
    )
}

/// Parses `--peers a,b,c` into a peer list (exits loudly on empties).
fn parse_peers(raw: &str) -> Vec<String> {
    let peers: Vec<String> = raw
        .split(',')
        .map(|p| p.trim().to_string())
        .filter(|p| !p.is_empty())
        .collect();
    if peers.is_empty() {
        eprintln!("error: --peers expects a comma-separated list of ip:port addresses");
        std::process::exit(2);
    }
    peers
}

/// A fan-out [`Router`] over `--peers`/`--replicas` when given — client
/// commands then route each key to its owning shard with follower
/// failover — or `None` for classic single-server `--addr` mode.
fn cluster_router(opts: &HashMap<String, String>) -> Option<Router> {
    let peers = parse_peers(opts.get("peers")?);
    let replicas: usize = get(opts, "replicas", if peers.len() > 1 { 1 } else { 0 });
    let topology = Topology::new(0, peers, replicas).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    Some(Router::new(topology).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    }))
}

/// Prints a successful protocol response as pretty JSON, or exits loudly
/// with the server's error.
fn report_response(result: Result<serde_json::Value, String>) {
    match result {
        Ok(value) => println!("{}", serde_json::to_string_pretty(&value).unwrap()),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_serve(opts: &HashMap<String, String>) {
    if wants_help(opts) {
        eprintln!(
            "prefixrl serve — run the resident multi-job optimization service\n\
             \n\
             Speaks prefixrl.serve.v1 (newline-delimited JSON over local TCP;\n\
             DESIGN.md §13). Jobs share one sharded evaluation store, finished\n\
             jobs merge into the persistent per-(task, backend, width) frontier\n\
             store, and with --state-dir both the frontier store and the job\n\
             queue survive restarts (even kill -9).\n\
             \n\
             OPTIONS\n\
             \x20 --addr <ip:port>       listen address (default {DEFAULT_SERVE_ADDR};\n\
             \x20                        port 0 picks an ephemeral port)\n\
             \x20 --workers <W>          concurrent job workers (default 2)\n\
             \x20 --queue-capacity <Q>   max queued-or-running jobs (default 256)\n\
             \x20 --eval-threads <T>     per-job EvalService thread budget (default 2)\n\
             \x20 --cache-shards <S>     shared evaluation store shards (default 16)\n\
             \x20 --event-tail <K>       events retained per job for status (default 64)\n\
             \x20 --state-dir <dir>      persist frontier.json + frontier.wal +\n\
             \x20                        jobs.json here\n\
             \x20 --compact-every <K>    WAL records before the frontier store\n\
             \x20                        compacts (default 64)\n\
             \n\
             CLUSTER (DESIGN.md §16; all three flags together)\n\
             \x20 --shard-id <K>         this node's shard id (0-based)\n\
             \x20 --peers <a,b,c>        every shard's listen address, in shard-id\n\
             \x20                        order; --addr defaults to peers[shard-id]\n\
             \x20 --replicas <R>         followers per primary on the peer ring\n\
             \x20                        (default 1 with >1 peers; 0 disables\n\
             \x20                        replication)"
        );
        return;
    }
    let cluster = opts.get("peers").map(|raw| {
        let peers = parse_peers(raw);
        let Some(shard_id) = get_opt::<usize>(opts, "shard-id") else {
            eprintln!("error: --peers requires --shard-id (which entry this node is)");
            std::process::exit(2);
        };
        let replicas: usize = get(opts, "replicas", if peers.len() > 1 { 1 } else { 0 });
        Topology::new(shard_id, peers, replicas).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    });
    let addr = opts.get("addr").cloned().unwrap_or_else(|| {
        cluster
            .as_ref()
            .map(|t| t.peers[t.shard_id].clone())
            .unwrap_or_else(|| DEFAULT_SERVE_ADDR.to_string())
    });
    let cfg = ServeConfig {
        addr,
        workers: get_workers(opts, "workers", 2),
        queue_capacity: get::<usize>(opts, "queue-capacity", 256).max(1),
        eval_threads: get_workers(opts, "eval-threads", 2),
        cache_shards: get::<usize>(opts, "cache-shards", 16).max(1),
        event_tail: get(opts, "event-tail", 64),
        state_dir: opts.get("state-dir").map(PathBuf::from),
        compact_every: get::<u64>(opts, "compact-every", 64).max(1),
        cluster,
    };
    let server = Server::bind(cfg).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    if let Some(topology) = &server.jobs().config().cluster {
        eprintln!(
            "prefixrl-serve shard {}/{} listening on {} ({}, {} replica(s)/primary) — \
             stop with `prefixrl shutdown --addr {}`",
            topology.shard_id,
            topology.num_shards(),
            server.local_addr(),
            prefixrl_serve::protocol::PROTOCOL,
            topology.replicas,
            server.local_addr(),
        );
    } else {
        eprintln!(
            "prefixrl-serve listening on {} ({}) — stop with `prefixrl shutdown --addr {}`",
            server.local_addr(),
            prefixrl_serve::protocol::PROTOCOL,
            server.local_addr(),
        );
    }
    if let Err(e) = server.run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn cmd_submit(opts: &HashMap<String, String>) {
    if wants_help(opts) {
        eprintln!(
            "prefixrl submit — enqueue a sweep job on a running server\n\
             \n\
             OPTIONS\n\
             \x20 --addr <ip:port>       server address (default {DEFAULT_SERVE_ADDR})\n\
             \x20 --peers <a,b,c>        cluster mode: route to the shard owning the\n\
             \x20                        job's key (with --replicas, default 1)\n\
             \x20 --task adder|prefix-or|incrementer   (default adder)\n\
             \x20 --backend analytical|synthesis|synthesis-power\n\
             \x20                        (default analytical; a synthesis binding\n\
             \x20                        keeps the first job's median weight for\n\
             \x20                        its curve point — shared-cache soundness)\n\
             \x20 --n <N>                input width (default 8)\n\
             \x20 --weights <K> / --w-min / --w-max / --w-list <w1,w2,...>\n\
             \x20                        weight schedule (defaults as in sweep;\n\
             \x20                        duplicates are rejected loudly)\n\
             \x20 --steps <K>            environment steps per agent (default 2000)\n\
             \x20 --seed <S>             master seed (default 0)"
        );
        return;
    }
    let weights = parse_weights(opts);
    let spec = JobSpec {
        task: opts.get("task").cloned().unwrap_or_else(|| "adder".into()),
        backend: opts
            .get("backend")
            .cloned()
            .unwrap_or_else(|| "analytical".into()),
        n: get(opts, "n", 8),
        weights: weights.values().to_vec(),
        steps: get(opts, "steps", 2000),
        seed: get(opts, "seed", 0),
    };
    let result = match cluster_router(opts) {
        Some(router) => router
            .submit(&spec)
            .map(|(id, shard)| serde_json::json!({ "id": id, "shard": shard as u64 })),
        None => serve_client(opts)
            .submit(&spec)
            .map(|id| serde_json::json!({ "id": id })),
    };
    match result {
        Ok(value) => println!("{}", serde_json::to_string(&value).unwrap()),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_status(opts: &HashMap<String, String>) {
    if wants_help(opts) {
        eprintln!(
            "prefixrl status — one job's status, or the full job list\n\
             \n\
             OPTIONS\n\
             \x20 --addr <ip:port>  server address (default {DEFAULT_SERVE_ADDR})\n\
             \x20 --id <K>          job id (omit to list every job)\n\
             \x20 --tail <K>        recent events to include (default 16)"
        );
        return;
    }
    let client = serve_client(opts);
    match get_opt::<u64>(opts, "id") {
        Some(id) => report_response(client.status(id, get(opts, "tail", 16))),
        None => report_response(client.list()),
    }
}

fn cmd_cancel(opts: &HashMap<String, String>) {
    if wants_help(opts) {
        eprintln!(
            "prefixrl cancel — cancel a queued or running job\n\
             \n\
             OPTIONS\n\
             \x20 --addr <ip:port>  server address (default {DEFAULT_SERVE_ADDR})\n\
             \x20 --id <K>          job id (required); a running job stops\n\
             \x20                   within one event tick"
        );
        return;
    }
    let Some(id) = get_opt::<u64>(opts, "id") else {
        eprintln!("error: --id is required");
        std::process::exit(2);
    };
    report_response(serve_client(opts).cancel(id));
}

fn cmd_frontier(opts: &HashMap<String, String>) {
    if wants_help(opts) {
        eprintln!(
            "prefixrl frontier — fetch a stored merged Pareto front\n\
             \n\
             The server merges every finished job's design pool into one\n\
             persistent front per (task, backend, width) key; this returns the\n\
             current combined front for one key (and lists all stored keys).\n\
             \n\
             OPTIONS\n\
             \x20 --addr <ip:port>  server address (default {DEFAULT_SERVE_ADDR})\n\
             \x20 --peers <a,b,c>   cluster mode: route to the owning shard, fail\n\
             \x20                   reads over to followers (--replicas, default 1)\n\
             \x20 --task <name>     circuit task (default adder)\n\
             \x20 --backend <name>  objective backend (default analytical)\n\
             \x20 --n <N>           input width (default 8)\n\
             \n\
             Exits 1 with `no such key` when nothing was ever merged under\n\
             the (task, backend, n) key — distinct from a stored-but-empty\n\
             front, which prints normally with count 0."
        );
        return;
    }
    let task = opts.get("task").cloned().unwrap_or_else(|| "adder".into());
    let backend = opts
        .get("backend")
        .cloned()
        .unwrap_or_else(|| "analytical".into());
    let n: u16 = get(opts, "n", 8);
    let response = match cluster_router(opts) {
        Some(router) => router.frontier(&task, &backend, n),
        None => serve_client(opts).frontier(&task, &backend, n),
    };
    if let Ok(value) = &response {
        if value.get("known") == Some(&serde_json::Value::Bool(false)) {
            let keys = value
                .get("keys")
                .and_then(serde_json::Value::as_array)
                .map(|ks| {
                    ks.iter()
                        .filter_map(|k| match k {
                            serde_json::Value::String(s) => Some(s.as_str()),
                            _ => None,
                        })
                        .collect::<Vec<_>>()
                        .join(", ")
                })
                .unwrap_or_default();
            eprintln!(
                "error: no such key `{task}/{backend}/{n}` — nothing has ever been \
                 merged under it (stored keys: [{keys}])"
            );
            std::process::exit(1);
        }
    }
    report_response(response);
}

fn cmd_query(opts: &HashMap<String, String>) {
    if wants_help(opts) {
        eprintln!(
            "prefixrl query — look up stored designs on the server's read tier\n\
             \n\
             Answers come from the server's lock-free frontier snapshot\n\
             (DESIGN.md §15): reads never wait on a running merge. Exactly one\n\
             query mode is required.\n\
             \n\
             MODES\n\
             \x20 --at-delay <D>    minimum-area stored design with delay <= D\n\
             \x20                   (falls back to the fastest design, met=false,\n\
             \x20                   when nothing is that fast)\n\
             \x20 --at-weight <W>   scalarized argmin at area-weight W in [0, 1]\n\
             \x20                   (W=0 fastest, W=1 smallest)\n\
             \x20 --range <LO:HI>   every stored design with LO <= delay <= HI\n\
             \n\
             OPTIONS\n\
             \x20 --addr <ip:port>  server address (default {DEFAULT_SERVE_ADDR})\n\
             \x20 --peers <a,b,c>   cluster mode: route to the owning shard, fail\n\
             \x20                   reads over to followers (--replicas, default 1)\n\
             \x20 --task <name>     circuit task (default adder)\n\
             \x20 --backend <name>  objective backend (default analytical)\n\
             \x20 --n <N>           input width (default 8)\n\
             \x20 --include-graph   attach the stored prefix graph(s)\n\
             \n\
             Exits 1 with `no such key` when nothing was ever merged under\n\
             the (task, backend, n) key."
        );
        return;
    }
    let task = opts.get("task").cloned().unwrap_or_else(|| "adder".into());
    let backend = opts
        .get("backend")
        .cloned()
        .unwrap_or_else(|| "analytical".into());
    let n: u16 = get(opts, "n", 8);
    let mut extra: Vec<(String, serde_json::Value)> = Vec::new();
    if opts.contains_key("include-graph") {
        extra.push(("include_graph".to_string(), serde_json::Value::Bool(true)));
    }
    let modes_given = ["at-delay", "at-weight", "range"]
        .iter()
        .filter(|m| opts.contains_key(**m))
        .count();
    if modes_given != 1 {
        eprintln!("error: exactly one of --at-delay, --at-weight, --range is required");
        std::process::exit(2);
    }
    let mode = if let Some(delay) = get_opt::<f64>(opts, "at-delay") {
        extra.push((
            "delay".to_string(),
            serde_json::Value::Number(serde_json::Number::Float(delay)),
        ));
        "best_at_delay"
    } else if let Some(w) = get_opt::<f64>(opts, "at-weight") {
        extra.push((
            "w".to_string(),
            serde_json::Value::Number(serde_json::Number::Float(w)),
        ));
        "best_at_weight"
    } else {
        let raw = opts.get("range").expect("checked above");
        let Some((lo, hi)) = raw.split_once(':') else {
            eprintln!("error: --range expects <LO:HI>, got `{raw}`");
            std::process::exit(2);
        };
        let parse = |s: &str| -> f64 {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("error: --range expects numeric <LO:HI>, got `{raw}`");
                std::process::exit(2);
            })
        };
        extra.push((
            "delay_lo".to_string(),
            serde_json::Value::Number(serde_json::Number::Float(parse(lo))),
        ));
        extra.push((
            "delay_hi".to_string(),
            serde_json::Value::Number(serde_json::Number::Float(parse(hi))),
        ));
        "range"
    };
    let response = match cluster_router(opts) {
        Some(router) => router.query(&task, &backend, n, mode, extra),
        None => serve_client(opts).query(&task, &backend, n, mode, extra),
    };
    if let Ok(value) = &response {
        let known = value.get("result").and_then(|r| r.get("known")).cloned();
        if known == Some(serde_json::Value::Bool(false)) {
            eprintln!(
                "error: no such key `{task}/{backend}/{n}` — nothing has ever been \
                 merged under it"
            );
            std::process::exit(1);
        }
    }
    report_response(response);
}

fn cmd_shutdown(opts: &HashMap<String, String>) {
    if wants_help(opts) {
        eprintln!(
            "prefixrl shutdown — ask the server to stop gracefully\n\
             \n\
             Running jobs are cancelled and re-queued in the persisted state,\n\
             so a restart with the same --state-dir resumes them.\n\
             \n\
             OPTIONS\n\
             \x20 --addr <ip:port>  server address (default {DEFAULT_SERVE_ADDR})"
        );
        return;
    }
    match serve_client(opts).shutdown() {
        Ok(()) => println!(
            "{}",
            serde_json::to_string(&serde_json::json!({ "result": "shutting down" })).unwrap()
        ),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_verilog(opts: &HashMap<String, String>) {
    if wants_help(opts) {
        eprintln!(
            "prefixrl verilog — emit structural Verilog for a structure\n\
             \n\
             OPTIONS\n\
             \x20 --structure <name>     structure to emit (default brent_kung)\n\
             \x20 --n <N>                input width (default 16)\n\
             \x20 --target <ns>          timing-optimize to this delay first\n\
             \x20 --lib nangate45|tech8  cell library (default nangate45)"
        );
        return;
    }
    let n: u16 = get(opts, "n", 16);
    let name = opts
        .get("structure")
        .cloned()
        .unwrap_or_else(|| "brent_kung".into());
    let lib = library(opts);
    let g = structure(&name, n);
    let nl = adder::generate(&g);
    if let Some(target) = get_opt::<f64>(opts, "target") {
        let cons = synth::sta::TimingConstraints::uniform(&lib);
        let out =
            synth::optimizer::optimize(&nl, &lib, &cons, target, &OptimizerConfig::commercial());
        eprintln!(
            "// optimized to {:.4} ns (target {:.4}), area {:.2} um^2, met={}",
            out.delay, target, out.area, out.met
        );
        print!("{}", netlist::verilog::export(&out.netlist));
    } else {
        print!("{}", netlist::verilog::export(&nl));
    }
}
