//! The `prefixrl` command-line tool: train agents, evaluate and render
//! prefix-adder designs, and export Verilog, without writing any code.
//!
//! ```text
//! prefixrl structures --n 32                         # survey regular adders
//! prefixrl train --n 8 --w 0.5 --steps 2000          # train one agent
//! prefixrl eval --structure sklansky --n 32 --lib tech8
//! prefixrl render --structure brent_kung --n 16 --dot
//! prefixrl verilog --structure kogge_stone --n 16 --target 0.3
//! ```

use prefixrl::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
        return;
    };
    let opts = parse_opts(rest);
    match cmd.as_str() {
        "structures" => cmd_structures(&opts),
        "train" => cmd_train(&opts),
        "eval" => cmd_eval(&opts),
        "render" => cmd_render(&opts),
        "verilog" => cmd_verilog(&opts),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command `{other}`");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "prefixrl — deep-RL prefix-adder design (PrefixRL, DAC 2021 reproduction)\n\
         \n\
         COMMANDS\n\
         \x20 structures --n <N> [--lib nangate45|tech8]\n\
         \x20     survey the regular adder structures (analytical + synthesized)\n\
         \x20 train --n <N> --w <w_area> --steps <K> [--evaluator synthesis|analytical]\n\
         \x20       [--actors <A>] [--eval-threads <T>] [--cache-shards <S>]\n\
         \x20       [--seed <S>] [--out <designs.json>] [--json]\n\
         \x20     train one PrefixRL agent and report its Pareto frontier;\n\
         \x20     --json prints a machine-readable summary (designs, cache\n\
         \x20     hit rate, steps/sec) for scriptable benchmarking\n\
         \x20 eval --structure <name> --n <N> [--lib ...] [--targets <T>]\n\
         \x20     synthesize a structure across delay targets\n\
         \x20 render --structure <name> --n <N> [--dot]\n\
         \x20     draw a prefix graph (ASCII, or Graphviz with --dot)\n\
         \x20 verilog --structure <name> --n <N> [--target <ns>] [--lib ...]\n\
         \x20     emit (optionally timing-optimized) structural Verilog"
    );
}

fn parse_opts(rest: &[String]) -> HashMap<String, String> {
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i].trim_start_matches("--").to_string();
        if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
            opts.insert(key, rest[i + 1].clone());
            i += 2;
        } else {
            opts.insert(key, "true".to_string());
            i += 1;
        }
    }
    opts
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    opts.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn library(opts: &HashMap<String, String>) -> Library {
    match opts.get("lib").map(String::as_str) {
        Some("tech8") => Library::tech8(),
        _ => Library::nangate45(),
    }
}

fn structure(name: &str, n: u16) -> PrefixGraph {
    match name {
        "ripple" => PrefixGraph::ripple(n),
        "sklansky" => structures::sklansky(n),
        "kogge_stone" => structures::kogge_stone(n),
        "brent_kung" => structures::brent_kung(n),
        "han_carlson" => structures::han_carlson(n),
        "ladner_fischer" => structures::ladner_fischer(n),
        other => {
            if let Some(s) = other.strip_prefix("sparse_ks_") {
                return structures::sparse_kogge_stone(n, s.parse().expect("sparsity"));
            }
            eprintln!("unknown structure `{other}`");
            std::process::exit(2);
        }
    }
}

fn cmd_structures(opts: &HashMap<String, String>) {
    let n: u16 = get(opts, "n", 16);
    let lib = library(opts);
    println!(
        "{:<16} {:>6} {:>6} {:>7} {:>10} {:>10} {:>11} {:>11}",
        "structure", "size", "depth", "fanout", "ana.area", "ana.delay", "syn.area", "syn.delay"
    );
    for (name, ctor) in structures::all_regular() {
        let g = ctor(n);
        let ana = prefix_graph::analytical::evaluate(&g);
        let curve = synth::sweep::sweep_graph(&g, &lib, &SweepConfig::fast());
        let d = curve.min_delay();
        println!(
            "{name:<16} {:>6} {:>6} {:>7} {:>10.1} {:>10.2} {:>11.1} {:>11.3}",
            g.size(),
            g.depth(),
            g.max_fanout(),
            ana.area,
            ana.delay,
            curve.area_at(d),
            d
        );
    }
}

fn cmd_train(opts: &HashMap<String, String>) {
    let n: u16 = get(opts, "n", 8);
    let w: f64 = get(opts, "w", 0.5);
    let steps: u64 = get(opts, "steps", 2000);
    let seed: u64 = get(opts, "seed", 0);
    let actors: usize = get(opts, "actors", 1).max(1);
    let eval_threads: usize = get(opts, "eval-threads", actors).max(1);
    let cache_shards: usize = get(opts, "cache-shards", 16).max(1);
    let json_mode = opts.contains_key("json");
    let mut cfg = AgentConfig::small(n, w as f32, steps);
    cfg.seed = seed;
    let use_synth = opts.get("evaluator").map(String::as_str) != Some("analytical");
    let inner: Box<dyn Evaluator> = if use_synth {
        cfg.env = prefixrl_core::env::EnvConfig::synthesis(n);
        Box::new(SynthesisEvaluator::new(
            library(opts),
            SweepConfig::fast(),
            w,
        ))
    } else {
        Box::new(AnalyticalEvaluator)
    };
    // The shared evaluation stack: sharded cache behind the EvalService
    // front door; every path (serial, async actors, batch) goes through it.
    let cache = Arc::new(CachedEvaluator::with_config(
        inner,
        CacheConfig::with_shards(cache_shards),
    ));
    let service = Arc::new(EvalService::new(
        Arc::clone(&cache) as Arc<dyn Evaluator>,
        eval_threads,
    ));
    let evaluator_name = if use_synth { "synthesis" } else { "analytical" };
    if !json_mode {
        println!(
            "training {n}b agent: w_area={w}, {steps} steps, evaluator={evaluator_name}, \
             actors={actors}, eval-threads={eval_threads}, cache-shards={cache_shards}"
        );
    }
    let t = std::time::Instant::now();
    let result = if actors > 1 {
        prefixrl_core::parallel::train_async(&cfg, service.clone(), actors)
    } else {
        train(&cfg, service.clone())
    };
    let elapsed = t.elapsed().as_secs_f64();
    let front = result.front();
    if json_mode {
        let summary = serde_json::json!({
            "n": n,
            "w_area": w,
            "steps": steps,
            "evaluator": evaluator_name,
            "actors": actors,
            "eval_threads": eval_threads,
            "elapsed_sec": elapsed,
            "steps_per_sec": steps as f64 / elapsed.max(1e-9),
            "designs": result.designs.len(),
            "frontier_size": front.len(),
            "grad_steps": result.losses.len(),
            "cache": {
                "shards": cache.shards(),
                "hits": cache.hits(),
                "misses": cache.misses(),
                "evictions": cache.evictions(),
                "hit_rate": cache.hit_rate(),
                "unique_states": cache.unique_states(),
            },
        });
        println!("{}", serde_json::to_string_pretty(&summary).unwrap());
    } else {
        println!(
            "done in {elapsed:.1}s ({:.1} steps/s): {} designs, {} grad steps, \
             cache hit rate {:.0}% over {} shards",
            steps as f64 / elapsed.max(1e-9),
            result.designs.len(),
            result.losses.len(),
            100.0 * cache.hit_rate(),
            cache.shards(),
        );
        println!("\nPareto frontier:");
        println!(
            "{:>10} {:>10}  {:>5} {:>5}",
            "area", "delay", "size", "depth"
        );
        for (p, g) in front.iter() {
            println!(
                "{:>10.2} {:>10.3}  {:>5} {:>5}",
                p.area,
                p.delay,
                g.size(),
                g.depth()
            );
        }
    }
    if let Some(path) = opts.get("out") {
        let json = serde_json::json!({
            "n": n, "w_area": w, "steps": steps,
            "frontier": front.iter().map(|(p, g)| serde_json::json!({
                "area": p.area, "delay": p.delay, "graph": g,
            })).collect::<Vec<_>>(),
        });
        std::fs::write(path, serde_json::to_string_pretty(&json).unwrap()).expect("write designs");
        if !json_mode {
            println!("\nwrote frontier to {path}");
        }
    }
}

fn cmd_eval(opts: &HashMap<String, String>) {
    let n: u16 = get(opts, "n", 16);
    let name = opts
        .get("structure")
        .cloned()
        .unwrap_or_else(|| "sklansky".into());
    let targets: usize = get(opts, "targets", 8);
    let lib = library(opts);
    let g = structure(&name, n);
    let cfg = SweepConfig {
        target_fractions: prefixrl_core::frontier::target_fractions(targets),
        ..SweepConfig::paper()
    };
    let curve = synth::sweep::sweep_graph(&g, &lib, &cfg);
    println!(
        "{name} {n}b on {} ({} graph nodes, depth {}):",
        lib.name(),
        g.size(),
        g.depth()
    );
    println!("{:>12} {:>12}", "delay(ns)", "area(um^2)");
    for (d, a) in curve.knots() {
        println!("{d:>12.4} {a:>12.2}");
    }
}

fn cmd_render(opts: &HashMap<String, String>) {
    let n: u16 = get(opts, "n", 16);
    let name = opts
        .get("structure")
        .cloned()
        .unwrap_or_else(|| "brent_kung".into());
    let g = structure(&name, n);
    if opts.contains_key("dot") {
        print!("{}", prefix_graph::render::dot(&g));
    } else {
        print!("{}", prefix_graph::render::ascii(&g));
    }
}

fn cmd_verilog(opts: &HashMap<String, String>) {
    let n: u16 = get(opts, "n", 16);
    let name = opts
        .get("structure")
        .cloned()
        .unwrap_or_else(|| "brent_kung".into());
    let lib = library(opts);
    let g = structure(&name, n);
    let nl = adder::generate(&g);
    if let Some(target) = opts.get("target").and_then(|t| t.parse::<f64>().ok()) {
        let cons = synth::sta::TimingConstraints::uniform(&lib);
        let out =
            synth::optimizer::optimize(&nl, &lib, &cons, target, &OptimizerConfig::commercial());
        eprintln!(
            "// optimized to {:.4} ns (target {:.4}), area {:.2} um^2, met={}",
            out.delay, target, out.area, out.met
        );
        print!("{}", netlist::verilog::export(&out.netlist));
    } else {
        print!("{}", netlist::verilog::export(&nl));
    }
}
