//! # PrefixRL
//!
//! A Rust reproduction of **"PrefixRL: Optimization of Parallel Prefix
//! Circuits using Deep Reinforcement Learning"** (Roy et al., DAC 2021) —
//! deep-RL design of prefix adders with a timing-driven synthesis simulator
//! in the training loop.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`prefix_graph`] | grid prefix-graph state space, legalization, actions, classical structures, analytical model |
//! | [`netlist`] | gate-level IR, Nangate45-inspired + 8nm-class cell libraries, Zimmermann-style adder generation |
//! | [`synth`] | STA, timing-driven optimization (sizing/buffering/pin swap), PCHIP area-delay curves, power |
//! | [`nn`] | pure-Rust conv/batchnorm/residual network stack with Adam and backprop |
//! | [`rl`] | scalarized multi-objective Double-DQN, replay, schedules |
//! | [`prefixrl_core`] | the PrefixRL environment, Q-network, experiment sessions (sweeps, run events, checkpoint/resume), caching, async training, Pareto tooling |
//! | [`baselines`] | simulated annealing \[14\], pruned search \[15\], cross-layer ML \[10\], commercial chooser |
//!
//! # Quickstart
//!
//! ```
//! use prefixrl::prelude::*;
//! use std::sync::Arc;
//!
//! // Sweep three small agents across scalarization weights on the 8-bit
//! // prefix-OR task (priority-encoder spine) with the analytical backend.
//! // Any parallel prefix computation plugs in the same way: pick a
//! // CircuitTask (Adder, PrefixOr, Incrementer, or your own) and an
//! // ObjectiveBackend (AnalyticalBackend, or SynthesisBackend for the
//! // paper's synthesis-in-the-loop reward). All agents share one cached
//! // evaluation service; their fronts merge into the result.
//! let experiment = Experiment::builder()
//!     .n(8)
//!     .task(Arc::new(PrefixOr))
//!     .backend(Arc::new(AnalyticalBackend))
//!     .weights(Weights::linspace(0.2, 0.8, 3))
//!     .base_config(AgentConfig::tiny(8, 0.5))
//!     .build();
//! let result = experiment.run_quiet().unwrap();
//! assert_eq!(result.records.len(), 3);
//! assert_eq!(result.task, "prefix-or");
//! assert!(!result.merged_front().is_empty());
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! harnesses regenerating every table and figure of the paper.

#![warn(missing_docs)]

pub use baselines;
pub use netlist;
pub use nn;
pub use prefix_graph;
pub use prefixrl_core;
pub use rl;
pub use synth;

/// One-stop imports for applications.
pub mod prelude {
    pub use baselines::{commercial_library, cross_layer, pruned_search, sa_frontier};
    pub use netlist::{adder, sim, Library, Netlist};
    pub use prefix_graph::{structures, Action, Node, PrefixGraph};
    pub use prefixrl_core::prelude::*;
    pub use synth::{AreaDelayCurve, OptimizerConfig, SweepConfig};
}
